//! Synthetic data generators.
//!
//! * [`SpectralSpec`] — numeric matrices with a planted power-law covariance
//!   spectrum, the structure that makes top-k PCA meaningful. Records are
//!   globally rescaled so the maximum row L2 norm equals `c` (the paper's
//!   norm bound), preserving the spectrum's shape.
//! * [`ClassificationSpec`] — feature matrices with unit-ball rows and
//!   labels drawn from a planted logistic model, for the LR experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqm_linalg::{orth::random_orthogonal, Matrix};

/// Specification of a spectral-decay numeric dataset.
#[derive(Clone, Debug)]
pub struct SpectralSpec {
    /// Number of records `m`.
    pub m: usize,
    /// Number of attributes `n`.
    pub n: usize,
    /// Power-law exponent: direction `i` has standard deviation
    /// `(i+1)^(-decay)`. `decay = 0` gives an isotropic cloud; `~1` gives a
    /// clearly low-rank-dominated spectrum like real tabular data.
    pub decay: f64,
    /// Maximum record L2 norm after global rescaling (the paper's `c`).
    pub c: f64,
    /// Apply a random orthogonal rotation so the principal directions are
    /// not axis-aligned. O(n^3) setup; automatically skipped for `n > 512`
    /// (rotation does not affect any of the rotation-invariant mechanisms
    /// or baselines).
    pub rotate: bool,
    /// RNG seed.
    pub seed: u64,
}

impl SpectralSpec {
    pub fn new(m: usize, n: usize) -> Self {
        SpectralSpec {
            m,
            n,
            decay: 0.8,
            c: 1.0,
            rotate: true,
            seed: 0,
        }
    }

    pub fn with_decay(mut self, decay: f64) -> Self {
        self.decay = decay;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_norm_bound(mut self, c: f64) -> Self {
        assert!(c > 0.0);
        self.c = c;
        self
    }

    /// Generate the matrix.
    pub fn generate(&self) -> Matrix {
        assert!(self.m > 0 && self.n > 0, "empty dataset");
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x0DA7_A5E7);
        let mut x = Matrix::zeros(self.m, self.n);
        // Column scales: power-law decay.
        let scales: Vec<f64> = (0..self.n)
            .map(|i| ((i + 1) as f64).powf(-self.decay))
            .collect();
        for i in 0..self.m {
            for j in 0..self.n {
                x[(i, j)] = gauss(&mut rng) * scales[j];
            }
        }
        if self.rotate && self.n <= 512 {
            let q = random_orthogonal(&mut rng, self.n);
            x = x.matmul(&q);
        }
        // Global rescale: max row norm == c.
        let max_norm = x.max_row_norm();
        if max_norm > 0.0 {
            x = x.scaled(self.c / max_norm);
        }
        x
    }
}

/// Specification of a binary-classification dataset with a planted logistic
/// model.
#[derive(Clone, Debug)]
pub struct ClassificationSpec {
    /// Number of records `m`.
    pub m: usize,
    /// Number of features `d` (the label adds one more column in the VFL
    /// view, matching the paper's `n = d + 1`).
    pub d: usize,
    /// Sharpness of the planted decision boundary: labels are
    /// `Bernoulli(sigmoid(sharpness * <w*, x>))`.
    pub sharpness: f64,
    /// Fraction of labels flipped uniformly at random.
    pub label_noise: f64,
    /// RNG seed.
    pub seed: u64,
}

/// A generated classification dataset.
#[derive(Clone, Debug)]
pub struct ClassificationDataset {
    /// `m x d` features, every row inside the unit L2 ball.
    pub features: Matrix,
    /// Binary labels.
    pub labels: Vec<u8>,
    /// The planted ground-truth direction (unit norm).
    pub true_weights: Vec<f64>,
}

impl ClassificationSpec {
    pub fn new(m: usize, d: usize) -> Self {
        ClassificationSpec {
            m,
            d,
            sharpness: 20.0,
            label_noise: 0.03,
            seed: 0,
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_label_noise(mut self, p: f64) -> Self {
        assert!((0.0..0.5).contains(&p), "label noise must be in [0, 0.5)");
        self.label_noise = p;
        self
    }

    /// Generate features, labels, and the planted weights.
    pub fn generate(&self) -> ClassificationDataset {
        assert!(self.m > 0 && self.d > 0, "empty dataset");
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xC1A5_51F7);
        // Planted unit direction.
        let mut w: Vec<f64> = (0..self.d).map(|_| gauss(&mut rng)).collect();
        let wn = w.iter().map(|v| v * v).sum::<f64>().sqrt();
        for v in &mut w {
            *v /= wn;
        }
        let mut features = Matrix::zeros(self.m, self.d);
        let mut labels = Vec::with_capacity(self.m);
        let inv_sqrt_d = 1.0 / (self.d as f64).sqrt();
        for i in 0..self.m {
            let mut norm_sq = 0.0;
            for j in 0..self.d {
                let v = gauss(&mut rng) * inv_sqrt_d;
                features[(i, j)] = v;
                norm_sq += v * v;
            }
            // Clip into the unit ball (rarely triggered: E||x|| ~ 1).
            let norm = norm_sq.sqrt();
            if norm > 1.0 {
                for j in 0..self.d {
                    features[(i, j)] /= norm;
                }
            }
            let margin: f64 = (0..self.d).map(|j| w[j] * features[(i, j)]).sum();
            let p = sigmoid(self.sharpness * margin);
            let mut y = u8::from(rng.gen::<f64>() < p);
            if rng.gen::<f64>() < self.label_noise {
                y ^= 1;
            }
            labels.push(y);
        }
        ClassificationDataset {
            features,
            labels,
            true_weights: w,
        }
    }
}

impl ClassificationDataset {
    /// Number of records.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The VFL view: a single `m x (d+1)` matrix whose last column is the
    /// label, matching the paper's "n = d + 1 attributes, one per client".
    pub fn as_vfl_matrix(&self) -> Matrix {
        let (m, d) = (self.features.rows(), self.features.cols());
        let mut x = Matrix::zeros(m, d + 1);
        for i in 0..m {
            for j in 0..d {
                x[(i, j)] = self.features[(i, j)];
            }
            x[(i, d)] = self.labels[i] as f64;
        }
        x
    }

    /// Split into train/test by a deterministic shuffle.
    pub fn split(
        &self,
        train_fraction: f64,
        seed: u64,
    ) -> (ClassificationDataset, ClassificationDataset) {
        assert!((0.0..=1.0).contains(&train_fraction));
        let m = self.len();
        let mut idx: Vec<usize> = (0..m).collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5B17);
        // Fisher-Yates.
        for i in (1..m).rev() {
            let j = rng.gen_range(0..=i);
            idx.swap(i, j);
        }
        let cut = (m as f64 * train_fraction).round() as usize;
        let make = |ids: &[usize]| {
            let rows: Vec<Vec<f64>> = ids.iter().map(|&i| self.features.row(i).to_vec()).collect();
            ClassificationDataset {
                features: Matrix::from_rows(&rows),
                labels: ids.iter().map(|&i| self.labels[i]).collect(),
                true_weights: self.true_weights.clone(),
            }
        };
        (make(&idx[..cut]), make(&idx[cut..]))
    }
}

/// Specification of a regression dataset with a planted linear model:
/// `y = <w*, x> + N(0, noise^2)`, clipped to `[-1, 1]` so the (feature,
/// label) record stays inside a ball of radius sqrt(2).
#[derive(Clone, Debug)]
pub struct RegressionSpec {
    pub m: usize,
    pub d: usize,
    /// Standard deviation of the label noise.
    pub noise: f64,
    pub seed: u64,
}

/// A generated regression dataset.
#[derive(Clone, Debug)]
pub struct RegressionDataset {
    /// `m x d` features, rows in the unit L2 ball.
    pub features: Matrix,
    /// Real-valued targets in `[-1, 1]`.
    pub targets: Vec<f64>,
    /// The planted unit-norm direction.
    pub true_weights: Vec<f64>,
}

impl RegressionSpec {
    pub fn new(m: usize, d: usize) -> Self {
        RegressionSpec {
            m,
            d,
            noise: 0.05,
            seed: 0,
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_noise(mut self, noise: f64) -> Self {
        assert!(noise >= 0.0);
        self.noise = noise;
        self
    }

    pub fn generate(&self) -> RegressionDataset {
        assert!(self.m > 0 && self.d > 0, "empty dataset");
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x4E64_0A11);
        let mut w: Vec<f64> = (0..self.d).map(|_| gauss(&mut rng)).collect();
        let wn = w.iter().map(|v| v * v).sum::<f64>().sqrt();
        for v in &mut w {
            *v /= wn;
        }
        let inv_sqrt_d = 1.0 / (self.d as f64).sqrt();
        let mut features = Matrix::zeros(self.m, self.d);
        let mut targets = Vec::with_capacity(self.m);
        for i in 0..self.m {
            let mut norm_sq = 0.0;
            for j in 0..self.d {
                let v = gauss(&mut rng) * inv_sqrt_d;
                features[(i, j)] = v;
                norm_sq += v * v;
            }
            let norm = norm_sq.sqrt();
            if norm > 1.0 {
                for j in 0..self.d {
                    features[(i, j)] /= norm;
                }
            }
            let y: f64 = (0..self.d).map(|j| w[j] * features[(i, j)]).sum::<f64>()
                + self.noise * gauss(&mut rng);
            targets.push(y.clamp(-1.0, 1.0));
        }
        RegressionDataset {
            features,
            targets,
            true_weights: w,
        }
    }
}

impl RegressionDataset {
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// The VFL view: `m x (d+1)` matrix with the target as the last column.
    pub fn as_vfl_matrix(&self) -> Matrix {
        let (m, d) = (self.features.rows(), self.features.cols());
        let mut x = Matrix::zeros(m, d + 1);
        for i in 0..m {
            for j in 0..d {
                x[(i, j)] = self.features[(i, j)];
            }
            x[(i, d)] = self.targets[i];
        }
        x
    }

    /// Mean squared prediction error of weights `w` on this dataset.
    pub fn mse(&self, w: &[f64]) -> f64 {
        assert_eq!(w.len(), self.features.cols());
        let m = self.len();
        (0..m)
            .map(|i| {
                let pred: f64 = w.iter().zip(self.features.row(i)).map(|(a, b)| a * b).sum();
                (pred - self.targets[i]).powi(2)
            })
            .sum::<f64>()
            / m as f64
    }

    /// Deterministic train/test split.
    pub fn split(&self, train_fraction: f64, seed: u64) -> (RegressionDataset, RegressionDataset) {
        assert!((0.0..=1.0).contains(&train_fraction));
        let m = self.len();
        let mut idx: Vec<usize> = (0..m).collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4E65);
        for i in (1..m).rev() {
            let j = rng.gen_range(0..=i);
            idx.swap(i, j);
        }
        let cut = (m as f64 * train_fraction).round() as usize;
        let make = |ids: &[usize]| {
            let rows: Vec<Vec<f64>> = ids.iter().map(|&i| self.features.row(i).to_vec()).collect();
            RegressionDataset {
                features: Matrix::from_rows(&rows),
                targets: ids.iter().map(|&i| self.targets[i]).collect(),
                true_weights: self.true_weights.clone(),
            }
        };
        (make(&idx[..cut]), make(&idx[cut..]))
    }
}

fn sigmoid(u: f64) -> f64 {
    1.0 / (1.0 + (-u).exp())
}

fn gauss<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen::<f64>() * 2.0 - 1.0;
        let v: f64 = rng.gen::<f64>() * 2.0 - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqm_linalg::eigen::symmetric_eigen;

    #[test]
    fn spectral_shape_and_norms() {
        let x = SpectralSpec::new(500, 20).with_seed(1).generate();
        assert_eq!((x.rows(), x.cols()), (500, 20));
        assert!((x.max_row_norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn spectrum_decays() {
        let x = SpectralSpec::new(2000, 16)
            .with_decay(1.0)
            .with_seed(2)
            .generate();
        let eig = symmetric_eigen(&x.gram());
        // Top eigenvalue should dominate the 8th by roughly (8)^2 ~ 64x
        // (variance ratio); allow slack for sampling noise.
        assert!(eig.values[0] / eig.values[7].max(1e-12) > 10.0);
    }

    #[test]
    fn zero_decay_is_isotropic() {
        let x = SpectralSpec::new(4000, 8)
            .with_decay(0.0)
            .with_seed(3)
            .generate();
        let eig = symmetric_eigen(&x.gram());
        assert!(eig.values[0] / eig.values[7] < 2.0);
    }

    #[test]
    fn deterministic_by_seed() {
        let a = SpectralSpec::new(50, 5).with_seed(7).generate();
        let b = SpectralSpec::new(50, 5).with_seed(7).generate();
        let c = SpectralSpec::new(50, 5).with_seed(8).generate();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn classification_rows_in_unit_ball() {
        let ds = ClassificationSpec::new(1000, 30).with_seed(4).generate();
        assert!(ds.features.max_row_norm() <= 1.0 + 1e-12);
        assert_eq!(ds.labels.len(), 1000);
        assert!(ds.labels.iter().all(|&y| y <= 1));
    }

    #[test]
    fn labels_correlate_with_planted_direction() {
        let ds = ClassificationSpec::new(5000, 20).with_seed(5).generate();
        // The planted direction must separate classes better than chance:
        // mean margin for y=1 above mean margin for y=0.
        let mut m1 = 0.0;
        let mut n1 = 0.0;
        let mut m0 = 0.0;
        let mut n0 = 0.0;
        for i in 0..ds.len() {
            let margin: f64 = (0..20)
                .map(|j| ds.true_weights[j] * ds.features[(i, j)])
                .sum();
            if ds.labels[i] == 1 {
                m1 += margin;
                n1 += 1.0;
            } else {
                m0 += margin;
                n0 += 1.0;
            }
        }
        assert!(m1 / n1 > m0 / n0 + 0.05);
    }

    #[test]
    fn both_classes_present() {
        let ds = ClassificationSpec::new(2000, 10).with_seed(6).generate();
        let ones = ds.labels.iter().filter(|&&y| y == 1).count();
        assert!(ones > 200 && ones < 1800, "ones = {ones}");
    }

    #[test]
    fn vfl_matrix_appends_label_column() {
        let ds = ClassificationSpec::new(10, 3).with_seed(7).generate();
        let x = ds.as_vfl_matrix();
        assert_eq!((x.rows(), x.cols()), (10, 4));
        for i in 0..10 {
            assert_eq!(x[(i, 3)], ds.labels[i] as f64);
        }
    }

    #[test]
    fn split_partitions_exactly() {
        let ds = ClassificationSpec::new(100, 5).with_seed(8).generate();
        let (train, test) = ds.split(0.8, 0);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
    }
}

#[cfg(test)]
mod regression_tests {
    use super::*;

    #[test]
    fn regression_shapes_and_bounds() {
        let ds = RegressionSpec::new(500, 10).with_seed(1).generate();
        assert_eq!(ds.len(), 500);
        assert!(ds.features.max_row_norm() <= 1.0 + 1e-12);
        assert!(ds.targets.iter().all(|y| (-1.0..=1.0).contains(y)));
    }

    #[test]
    fn planted_weights_predict_well() {
        let ds = RegressionSpec::new(2000, 8).with_seed(2).generate();
        let mse_true = ds.mse(&ds.true_weights);
        let mse_zero = ds.mse(&[0.0; 8]);
        assert!(
            mse_true < mse_zero / 5.0,
            "true {mse_true} vs zero {mse_zero}"
        );
    }

    #[test]
    fn regression_split() {
        let ds = RegressionSpec::new(100, 4).with_seed(3).generate();
        let (tr, te) = ds.split(0.7, 0);
        assert_eq!(tr.len(), 70);
        assert_eq!(te.len(), 30);
    }

    #[test]
    fn regression_vfl_matrix() {
        let ds = RegressionSpec::new(10, 3).with_seed(4).generate();
        let x = ds.as_vfl_matrix();
        assert_eq!((x.rows(), x.cols()), (10, 4));
        assert_eq!(x[(5, 3)], ds.targets[5]);
    }
}
