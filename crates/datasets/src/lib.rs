//! Datasets for the SQM experiments.
//!
//! The paper evaluates on KDDCUP, ACSIncome (CA/TX/NY/FL), CiteSeer and
//! Gene. Those files are not redistributable/downloadable in this offline
//! build, so [`synthetic`] provides generators that reproduce the
//! *experiment-relevant* structure — row/column counts, bounded record
//! norms, power-law covariance spectra for PCA, and a planted logistic
//! model for classification — and [`presets`] instantiates them with each
//! paper dataset's shape (scaled-down by default; `Scale::Paper` restores
//! the full sizes). [`csv`] loads real data when available so the presets
//! can be swapped for the originals.

pub mod csv;
pub mod presets;
pub mod synthetic;

pub use presets::{acsincome_like, citeseer_like, gene_like, kddcup_like, Scale};
pub use synthetic::{
    ClassificationDataset, ClassificationSpec, RegressionDataset, RegressionSpec, SpectralSpec,
};
