//! Helpers over `&[f64]` slices.

/// Dot product. Panics if lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// L1 norm.
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

/// `y += alpha * x`. Panics if lengths differ.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scale a vector in place.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Normalize to unit L2 norm in place; returns the original norm.
/// Zero vectors are left unchanged (returns 0).
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

/// Clip the L2 norm of `x` to at most `c` (DPSGD-style gradient clipping).
/// Returns the scaling factor applied (1.0 if no clipping occurred).
pub fn clip_norm(x: &mut [f64], c: f64) -> f64 {
    assert!(c > 0.0, "clip bound must be positive");
    let n = norm2(x);
    if n > c {
        let f = c / n;
        scale(f, x);
        f
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm1(&[3.0, -4.0]), 7.0);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[10.0, 20.0], &mut y);
        assert_eq!(y, vec![21.0, 41.0]);
    }

    #[test]
    fn normalize_unit() {
        let mut x = vec![3.0, 4.0];
        let n = normalize(&mut x);
        assert_eq!(n, 5.0);
        assert!((norm2(&x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_vector_noop() {
        let mut x = vec![0.0, 0.0];
        assert_eq!(normalize(&mut x), 0.0);
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn clip_only_when_needed() {
        let mut x = vec![3.0, 4.0];
        assert_eq!(clip_norm(&mut x, 10.0), 1.0);
        assert_eq!(x, vec![3.0, 4.0]);
        let f = clip_norm(&mut x, 1.0);
        assert!((f - 0.2).abs() < 1e-12);
        assert!((norm2(&x) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
