//! Dense linear algebra for SQM's PCA pipeline and dataset generators.
//!
//! Implemented from scratch (the offline dependency whitelist has no
//! numerics crates):
//!
//! * [`matrix`] — row-major dense [`Matrix`], products, Gram matrices,
//!   Frobenius norms.
//! * [`vector`] — small helpers over `&[f64]` (dot products, norms, axpy).
//! * [`eigen`] — cyclic Jacobi eigensolver for symmetric matrices and top-k
//!   principal subspace extraction.
//! * [`orth`] — Gram-Schmidt orthonormalization and random orthogonal
//!   matrices (used to plant spectra in synthetic datasets).

pub mod eigen;
pub mod matrix;
pub mod orth;
pub mod solve;
pub mod vector;

pub use eigen::{symmetric_eigen, top_k_eigenvectors, EigenDecomposition};
pub use matrix::Matrix;
pub use orth::{gram_schmidt, random_orthogonal};
