//! Symmetric eigendecomposition by the cyclic Jacobi method.
//!
//! PCA (both the paper's SQM instantiation and the Analyze-Gauss baseline)
//! extracts the top-k eigenvectors of a (noisy, symmetric) covariance
//! matrix. Jacobi rotations are simple, numerically robust for symmetric
//! matrices, and accurate to machine precision for the moderate dimensions
//! (n up to a few thousand) in the paper's experiments.

use crate::matrix::Matrix;

/// The result of a symmetric eigendecomposition.
///
/// Eigenvalues are sorted in descending order; `vectors` holds the matching
/// eigenvectors as *columns* (so `vectors` is the `V` of `A = V diag(l) V^T`).
#[derive(Clone, Debug)]
pub struct EigenDecomposition {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Column `j` is the eigenvector for `values[j]`.
    pub vectors: Matrix,
    /// Number of cyclic Jacobi sweeps the solver actually performed before
    /// the off-diagonal mass dropped below tolerance.
    pub sweeps: usize,
}

/// Decompose a symmetric matrix. Panics if `a` is not square or is visibly
/// asymmetric.
///
/// `max_sweeps` cyclic sweeps are performed (14 is ample for convergence to
/// machine precision for n <= 4096); iteration stops early once all
/// off-diagonal mass is below `1e-30` relative to the Frobenius norm.
pub fn symmetric_eigen(a: &Matrix) -> EigenDecomposition {
    assert_eq!(a.rows(), a.cols(), "symmetric_eigen: matrix must be square");
    let frob = a.frobenius_norm();
    let tol = frob.max(f64::MIN_POSITIVE) * 1e-14;
    assert!(
        a.is_symmetric(frob.max(1.0) * 1e-9),
        "symmetric_eigen: matrix is not symmetric"
    );

    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    const MAX_SWEEPS: usize = 30;

    let mut sweeps = 0;
    for _ in 0..MAX_SWEEPS {
        let off = off_diagonal_norm(&m);
        if off <= tol {
            break;
        }
        sweeps += 1;
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // Compute the Jacobi rotation (c, s) annihilating m[p][q].
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                apply_rotation(&mut m, &mut v, p, q, c, s);
            }
        }
    }

    // Extract eigenvalues from the (now nearly diagonal) matrix and sort.
    let mut order: Vec<usize> = (0..n).collect();
    let values: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    order.sort_by(|&i, &j| values[j].partial_cmp(&values[i]).expect("NaN eigenvalue"));

    let sorted_values: Vec<f64> = order.iter().map(|&i| values[i]).collect();
    let mut sorted_vectors = Matrix::zeros(n, n);
    for (new_j, &old_j) in order.iter().enumerate() {
        for i in 0..n {
            sorted_vectors[(i, new_j)] = v[(i, old_j)];
        }
    }

    EigenDecomposition {
        values: sorted_values,
        vectors: sorted_vectors,
        sweeps,
    }
}

/// Apply the Jacobi rotation `J(p, q, c, s)` to `m` (two-sided) and
/// accumulate it into `v` (one-sided).
fn apply_rotation(m: &mut Matrix, v: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let n = m.rows();
    // Rows/columns p and q of the symmetric matrix.
    for k in 0..n {
        if k != p && k != q {
            let mkp = m[(k, p)];
            let mkq = m[(k, q)];
            m[(k, p)] = c * mkp - s * mkq;
            m[(p, k)] = m[(k, p)];
            m[(k, q)] = s * mkp + c * mkq;
            m[(q, k)] = m[(k, q)];
        }
    }
    let app = m[(p, p)];
    let aqq = m[(q, q)];
    let apq = m[(p, q)];
    m[(p, p)] = c * c * app - 2.0 * s * c * apq + s * s * aqq;
    m[(q, q)] = s * s * app + 2.0 * s * c * apq + c * c * aqq;
    m[(p, q)] = 0.0;
    m[(q, p)] = 0.0;
    // Accumulate into the eigenvector matrix.
    for k in 0..n {
        let vkp = v[(k, p)];
        let vkq = v[(k, q)];
        v[(k, p)] = c * vkp - s * vkq;
        v[(k, q)] = s * vkp + c * vkq;
    }
}

fn off_diagonal_norm(m: &Matrix) -> f64 {
    let n = m.rows();
    let mut s = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            s += 2.0 * m[(i, j)] * m[(i, j)];
        }
    }
    s.sqrt()
}

/// Dimension above which [`top_k_eigenvectors`] switches from full Jacobi
/// (O(n^3) per sweep) to shifted orthogonal iteration (O(k n^2) per step).
const ORTHOGONAL_ITERATION_THRESHOLD: usize = 600;

/// The top-k eigenvectors of a symmetric matrix, as an `n x k` matrix
/// (the rank-k principal subspace `V~` of the paper's PCA instantiation).
///
/// Small matrices use the full Jacobi decomposition; large ones use
/// [`orthogonal_iteration`], which is what makes the paper-scale
/// high-dimensional datasets (CiteSeer n=3703) tractable.
pub fn top_k_eigenvectors(a: &Matrix, k: usize) -> Matrix {
    top_k_eigenvectors_with_sweeps(a, k).0
}

/// Like [`top_k_eigenvectors`], additionally reporting how many Jacobi
/// sweeps the decomposition took — `None` when the large-dimension path
/// (orthogonal iteration) was taken instead. Lets callers feed an
/// eigensolver-work metric without linalg depending on any metrics sink.
pub fn top_k_eigenvectors_with_sweeps(a: &Matrix, k: usize) -> (Matrix, Option<usize>) {
    let n = a.rows();
    assert!(k <= n, "top_k_eigenvectors: k={k} exceeds dimension {n}");
    if n <= ORTHOGONAL_ITERATION_THRESHOLD || k * 4 >= n {
        let eig = symmetric_eigen(a);
        let mut v = Matrix::zeros(n, k);
        for j in 0..k {
            for i in 0..n {
                v[(i, j)] = eig.vectors[(i, j)];
            }
        }
        (v, Some(eig.sweeps))
    } else {
        (orthogonal_iteration(a, k, 300, 1e-10), None)
    }
}

/// Shifted orthogonal (subspace) iteration: the top-k *algebraically
/// largest* eigenvectors of a symmetric matrix.
///
/// Iterates `V <- orth((A + s I) V)` with `s = ||A||_F`, which makes the
/// spectrum positive so convergence targets the largest eigenvalues rather
/// than the largest magnitudes (noisy covariances can have strongly
/// negative noise eigenvalues). Converges geometrically in the gap ratio;
/// `max_iters` caps runaway cases with a deterministic, still-orthonormal
/// result.
pub fn orthogonal_iteration(a: &Matrix, k: usize, max_iters: usize, tol: f64) -> Matrix {
    let n = a.rows();
    assert_eq!(a.cols(), n, "orthogonal_iteration: matrix must be square");
    assert!(k >= 1 && k <= n);
    let shift = a.frobenius_norm().max(1e-300);

    // Deterministic pseudo-random start (quasi-random directions), then
    // orthonormalize.
    let mut v = Matrix::zeros(n, k);
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    for i in 0..n {
        for j in 0..k {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            v[(i, j)] = ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
        }
    }
    let mut v = crate::orth::gram_schmidt(&v);
    assert_eq!(v.cols(), k, "degenerate start basis");

    let mut last_rayleigh = vec![f64::INFINITY; k];
    for _ in 0..max_iters {
        // W = A V + shift * V.
        let mut w = a.matmul(&v);
        for i in 0..n {
            for j in 0..k {
                w[(i, j)] += shift * v[(i, j)];
            }
        }
        let next = crate::orth::gram_schmidt(&w);
        assert_eq!(next.cols(), k, "subspace collapsed during iteration");
        v = next;
        // Convergence via Rayleigh quotients.
        let av = a.matmul(&v);
        let mut rayleigh = vec![0.0; k];
        for j in 0..k {
            let mut num = 0.0;
            for i in 0..n {
                num += v[(i, j)] * av[(i, j)];
            }
            rayleigh[j] = num;
        }
        let drift = rayleigh
            .iter()
            .zip(&last_rayleigh)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        if drift < tol * shift {
            break;
        }
        last_rayleigh = rayleigh;
    }
    v
}

/// PCA utility `||X V||_F^2` — the variance captured by subspace `V`
/// (the paper's Figure 2 metric).
pub fn captured_variance(x: &Matrix, v: &Matrix) -> f64 {
    x.matmul(v).frobenius_norm_sq()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(e: &EigenDecomposition) -> Matrix {
        let n = e.values.len();
        let mut d = Matrix::zeros(n, n);
        for i in 0..n {
            d[(i, i)] = e.values[i];
        }
        e.vectors.matmul(&d).matmul(&e.vectors.transpose())
    }

    #[test]
    fn diagonal_matrix() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 1.0;
        a[(1, 1)] = 5.0;
        a[(2, 2)] = 3.0;
        let e = symmetric_eigen(&a);
        assert!((e.values[0] - 5.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
        assert!((e.values[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = symmetric_eigen(&a);
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
        let v0 = e.vectors.col(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v0[0] - v0[1]).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_and_orthonormality() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let n = 12;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v: f64 = rng.gen::<f64>() * 2.0 - 1.0;
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let e = symmetric_eigen(&a);
        // A = V D V^T
        assert!(reconstruct(&e).sub(&a).frobenius_norm() < 1e-9 * a.frobenius_norm().max(1.0));
        // V^T V = I
        let vtv = e.vectors.transpose().matmul(&e.vectors);
        assert!(vtv.sub(&Matrix::identity(n)).frobenius_norm() < 1e-10);
        // Sorted descending.
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn negative_eigenvalues_sorted() {
        let a = Matrix::from_rows(&[vec![-4.0, 0.0], vec![0.0, -1.0]]);
        let e = symmetric_eigen(&a);
        assert!((e.values[0] + 1.0).abs() < 1e-12);
        assert!((e.values[1] + 4.0).abs() < 1e-12);
    }

    #[test]
    fn top_k_shape_and_capture() {
        // Data along the x-axis: top-1 subspace captures everything.
        let x = Matrix::from_rows(&[vec![1.0, 0.0], vec![2.0, 0.0], vec![-3.0, 0.0]]);
        let g = x.gram();
        let v = top_k_eigenvectors(&g, 1);
        assert_eq!((v.rows(), v.cols()), (2, 1));
        let util = captured_variance(&x, &v);
        assert!((util - x.frobenius_norm_sq()).abs() < 1e-10);
    }

    #[test]
    fn captured_variance_monotone_in_k() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(8);
        let x = Matrix::from_vec(30, 6, (0..180).map(|_| rng.gen::<f64>() - 0.5).collect());
        let g = x.gram();
        let mut last = 0.0;
        for k in 1..=6 {
            let v = top_k_eigenvectors(&g, k);
            let u = captured_variance(&x, &v);
            assert!(u >= last - 1e-9, "k={k}: {u} < {last}");
            last = u;
        }
        // Full subspace captures all variance.
        assert!((last - x.frobenius_norm_sq()).abs() < 1e-8);
    }

    #[test]
    fn orthogonal_iteration_matches_jacobi() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(21);
        let n = 40;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v: f64 = rng.gen::<f64>() - 0.5;
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        // Boost a planted top subspace so the gap is clear.
        for i in 0..n {
            a[(i, i)] += if i < 3 { 20.0 + i as f64 } else { 0.0 };
        }
        let k = 3;
        let eig = symmetric_eigen(&a);
        let v_oi = orthogonal_iteration(&a, k, 500, 1e-12);
        // Compare captured "energy" of A in both subspaces.
        let energy = |v: &Matrix| {
            let av = a.matmul(v);
            (0..k)
                .map(|j| (0..n).map(|i| v[(i, j)] * av[(i, j)]).sum::<f64>())
                .sum::<f64>()
        };
        let e_jacobi: f64 = eig.values[..k].iter().sum();
        let e_oi = energy(&v_oi);
        assert!(
            (e_oi - e_jacobi).abs() < 1e-6 * e_jacobi.abs().max(1.0),
            "OI {e_oi} vs Jacobi {e_jacobi}"
        );
        // Orthonormal columns.
        let vtv = v_oi.transpose().matmul(&v_oi);
        assert!(vtv.sub(&Matrix::identity(k)).frobenius_norm() < 1e-8);
    }

    #[test]
    fn orthogonal_iteration_handles_negative_spectrum() {
        // Top algebraic eigenvector of diag(1, -50) is e1 even though
        // |-50| > |1| — the shift must prevent convergence to e2.
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, -50.0]]);
        let v = orthogonal_iteration(&a, 1, 500, 1e-14);
        assert!(
            v[(0, 0)].abs() > 0.999,
            "converged to the wrong eigenvector: {v:?}"
        );
    }

    #[test]
    fn top_k_dispatch_consistency_near_threshold() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // Force both code paths on the same matrix and compare captured
        // variance of a planted spike.
        let mut rng = StdRng::seed_from_u64(22);
        let n = 50;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v: f64 = 0.01 * (rng.gen::<f64>() - 0.5);
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
            a[(i, i)] += if i == 0 { 5.0 } else { 0.1 };
        }
        let jacobi = {
            let eig = symmetric_eigen(&a);
            eig.vectors.col(0)
        };
        let oi = orthogonal_iteration(&a, 1, 500, 1e-12).col(0);
        let dot: f64 = jacobi.iter().zip(&oi).map(|(x, y)| x * y).sum();
        assert!(
            dot.abs() > 0.9999,
            "subspaces differ: |dot| = {}",
            dot.abs()
        );
    }

    #[test]
    fn zero_matrix() {
        let e = symmetric_eigen(&Matrix::zeros(4, 4));
        assert!(e.values.iter().all(|&v| v == 0.0));
        // Already diagonal: the solver should not need a single sweep.
        assert_eq!(e.sweeps, 0);
    }

    #[test]
    fn sweep_count_reflects_work() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = symmetric_eigen(&a);
        assert!(e.sweeps >= 1 && e.sweeps <= 30, "sweeps {}", e.sweeps);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_non_square() {
        symmetric_eigen(&Matrix::zeros(2, 3));
    }

    #[test]
    #[should_panic(expected = "not symmetric")]
    fn rejects_asymmetric() {
        let a = Matrix::from_rows(&[vec![1.0, 5.0], vec![0.0, 1.0]]);
        symmetric_eigen(&a);
    }
}
