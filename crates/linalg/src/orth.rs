//! Orthonormal bases and random orthogonal matrices.
//!
//! The synthetic dataset generators plant a target covariance spectrum by
//! drawing a Haar-ish random orthogonal basis (QR of a Gaussian matrix via
//! modified Gram-Schmidt) and scaling its directions.

use rand::Rng;

use crate::matrix::Matrix;
use crate::vector;

/// Modified Gram-Schmidt on the *columns* of `a`.
///
/// Returns an `n x r` matrix with orthonormal columns spanning the column
/// space of `a` (columns that are numerically dependent are dropped, so
/// `r <= a.cols()`).
pub fn gram_schmidt(a: &Matrix) -> Matrix {
    let n = a.rows();
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(a.cols());
    for j in 0..a.cols() {
        let mut v = a.col(j);
        for b in &basis {
            let proj = vector::dot(&v, b);
            vector::axpy(-proj, b, &mut v);
        }
        // Re-orthogonalize once for numerical robustness (MGS2).
        for b in &basis {
            let proj = vector::dot(&v, b);
            vector::axpy(-proj, b, &mut v);
        }
        let norm = vector::normalize(&mut v);
        if norm > 1e-12 {
            basis.push(v);
        }
    }
    let r = basis.len();
    let mut q = Matrix::zeros(n, r);
    for (j, b) in basis.iter().enumerate() {
        for i in 0..n {
            q[(i, j)] = b[i];
        }
    }
    q
}

/// A random `n x n` orthogonal matrix (QR of an i.i.d. Gaussian matrix).
pub fn random_orthogonal<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Matrix {
    loop {
        let mut g = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                g[(i, j)] = sqm_gauss(rng);
            }
        }
        let q = gram_schmidt(&g);
        // A Gaussian matrix is full-rank with probability 1; retry on the
        // measure-zero (numerical) degenerate case.
        if q.cols() == n {
            return q;
        }
    }
}

// Local Gaussian sampler to avoid a dependency cycle with sqm-sampling.
fn sqm_gauss<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen::<f64>() * 2.0 - 1.0;
        let v: f64 = rng.gen::<f64>() * 2.0 - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gram_schmidt_orthonormal() {
        let a = Matrix::from_rows(&[
            vec![1.0, 1.0, 0.0],
            vec![0.0, 1.0, 1.0],
            vec![0.0, 0.0, 1.0],
        ]);
        let q = gram_schmidt(&a);
        let qtq = q.transpose().matmul(&q);
        assert!(qtq.sub(&Matrix::identity(3)).frobenius_norm() < 1e-12);
    }

    #[test]
    fn gram_schmidt_drops_dependent_columns() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![1.0, 2.0], vec![1.0, 2.0]]);
        let q = gram_schmidt(&a);
        assert_eq!(q.cols(), 1);
    }

    #[test]
    fn random_orthogonal_properties() {
        let mut rng = StdRng::seed_from_u64(17);
        let n = 10;
        let q = random_orthogonal(&mut rng, n);
        let qtq = q.transpose().matmul(&q);
        assert!(qtq.sub(&Matrix::identity(n)).frobenius_norm() < 1e-10);
        let qqt = q.matmul(&q.transpose());
        assert!(qqt.sub(&Matrix::identity(n)).frobenius_norm() < 1e-10);
    }

    #[test]
    fn preserves_norms() {
        let mut rng = StdRng::seed_from_u64(18);
        let q = random_orthogonal(&mut rng, 6);
        let v: Vec<f64> = (0..6).map(|i| i as f64 - 2.5).collect();
        let qv = q.matvec(&v);
        assert!((vector::norm2(&qv) - vector::norm2(&v)).abs() < 1e-10);
    }
}
