//! Dense linear solves (Gaussian elimination with partial pivoting).
//!
//! Used by the ridge-regression task to solve the (noisy, regularized)
//! normal equations `(X^T X + lambda I) w = X^T y`.

use crate::matrix::Matrix;

/// Solve `A x = b` for square `A`. Panics if `A` is singular to working
/// precision or shapes mismatch.
pub fn solve(a: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "solve: matrix must be square");
    assert_eq!(b.len(), n, "solve: rhs length mismatch");
    let mut m = a.clone();
    let mut x = b.to_vec();

    for col in 0..n {
        // Partial pivot.
        let piv = (col..n)
            .max_by(|&r1, &r2| {
                m[(r1, col)]
                    .abs()
                    .partial_cmp(&m[(r2, col)].abs())
                    .expect("NaN during elimination")
            })
            .unwrap();
        let pval = m[(piv, col)];
        assert!(
            pval.abs() > 1e-300,
            "solve: matrix is singular (pivot {pval} in column {col})"
        );
        if piv != col {
            for j in 0..n {
                let tmp = m[(col, j)];
                m[(col, j)] = m[(piv, j)];
                m[(piv, j)] = tmp;
            }
            x.swap(col, piv);
        }
        let p = m[(col, col)];
        for r in (col + 1)..n {
            let f = m[(r, col)] / p;
            if f == 0.0 {
                continue;
            }
            for j in col..n {
                m[(r, j)] -= f * m[(col, j)];
            }
            x[r] -= f * x[col];
        }
    }
    // Back substitution.
    for col in (0..n).rev() {
        let mut s = x[col];
        for j in (col + 1)..n {
            s -= m[(col, j)] * x[j];
        }
        x[col] = s / m[(col, col)];
    }
    x
}

/// Solve the ridge normal equations `(G + lambda I) w = r` given a Gram-like
/// matrix `G` (symmetrized defensively) and right-hand side `r`.
pub fn solve_ridge(g: &Matrix, r: &[f64], lambda: f64) -> Vec<f64> {
    assert!(lambda >= 0.0, "ridge parameter must be non-negative");
    let n = g.rows();
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            a[(i, j)] = 0.5 * (g[(i, j)] + g[(j, i)]);
        }
        a[(i, i)] += lambda;
    }
    solve(&a, r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_system() {
        // [[2, 1], [1, 3]] x = [5, 10] => x = [1, 3].
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = solve(&a, &[5.0, 10.0]);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn identity_solve() {
        let x = solve(&Matrix::identity(4), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(x, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn pivot_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = solve(&a, &[3.0, 7.0]);
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn random_roundtrip() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let n = 12;
        let a = Matrix::from_vec(n, n, (0..n * n).map(|_| rng.gen::<f64>() - 0.5).collect());
        let truth: Vec<f64> = (0..n).map(|i| i as f64 - 4.0).collect();
        let b = a.matvec(&truth);
        let x = solve(&a, &b);
        for (xi, ti) in x.iter().zip(&truth) {
            assert!((xi - ti).abs() < 1e-9, "{xi} vs {ti}");
        }
    }

    #[test]
    fn ridge_regularization_shrinks_solution() {
        let g = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let r = [2.0, 4.0];
        let w0 = solve_ridge(&g, &r, 0.0);
        let w1 = solve_ridge(&g, &r, 1.0);
        assert!((w0[1] - 4.0).abs() < 1e-12);
        assert!((w1[1] - 2.0).abs() < 1e-12); // (1+1) w = 4
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn rejects_singular() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        solve(&a, &[1.0, 2.0]);
    }
}
