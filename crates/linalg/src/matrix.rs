//! Row-major dense matrix.

use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

use crate::vector;

/// A dense `rows x cols` matrix of `f64`, stored row-major.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// From a flat row-major buffer. Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_vec: buffer size mismatch");
        Matrix { rows, cols, data }
    }

    /// From a list of equal-length rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` out.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Flat row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Flat row-major data, mutable.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dimensions mismatch ({}x{} * {}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order: streams through `other` row-wise for locality.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                vector::axpy(a, orow, out_row);
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec: dimension mismatch");
        (0..self.rows)
            .map(|i| vector::dot(self.row(i), v))
            .collect()
    }

    /// Gram matrix `X^T X` — the covariance-style matrix PCA perturbs.
    /// Computed directly (without forming the transpose) in O(m n^2 / 2).
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut g = Matrix::zeros(n, n);
        for i in 0..self.rows {
            let row = self.row(i);
            for j in 0..n {
                let xj = row[j];
                if xj == 0.0 {
                    continue;
                }
                for k in j..n {
                    g[(j, k)] += xj * row[k];
                }
            }
        }
        for j in 0..n {
            for k in 0..j {
                g[(j, k)] = g[(k, j)];
            }
        }
        g
    }

    /// Element-wise sum.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add: shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Element-wise difference.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "sub: shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scale all entries.
    pub fn scaled(&self, alpha: f64) -> Matrix {
        let data = self.data.iter().map(|a| a * alpha).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Squared Frobenius norm.
    pub fn frobenius_norm_sq(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Is this matrix symmetric up to `tol`?
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Maximum L2 norm over rows (the record-norm bound `c` of the paper).
    pub fn max_row_norm(&self) -> f64 {
        (0..self.rows)
            .map(|i| vector::norm2(self.row(i)))
            .fold(0.0, f64::max)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn gram_matches_explicit_transpose_product() {
        let x = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
            vec![-1.0, 0.5, 2.0],
        ]);
        let g = x.gram();
        let g2 = x.transpose().matmul(&x);
        assert!(g.sub(&g2).frobenius_norm() < 1e-12);
        assert!(g.is_symmetric(0.0));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().rows(), 3);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let v = vec![5.0, 6.0];
        assert_eq!(a.matvec(&v), vec![17.0, 39.0]);
    }

    #[test]
    fn frobenius() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]);
        assert_eq!(a.frobenius_norm(), 5.0);
        assert_eq!(a.frobenius_norm_sq(), 25.0);
    }

    #[test]
    fn row_col_access() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn max_row_norm() {
        let a = Matrix::from_rows(&[vec![3.0, 4.0], vec![1.0, 0.0]]);
        assert_eq!(a.max_row_norm(), 5.0);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![10.0, 20.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[vec![11.0, 22.0]]));
        assert_eq!(b.sub(&a), Matrix::from_rows(&[vec![9.0, 18.0]]));
        assert_eq!(a.scaled(3.0), Matrix::from_rows(&[vec![3.0, 6.0]]));
    }

    #[test]
    #[should_panic(expected = "inner dimensions mismatch")]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
        proptest::collection::vec(-10.0f64..10.0, rows * cols)
            .prop_map(move |data| Matrix::from_vec(rows, cols, data))
    }

    proptest! {
        #[test]
        fn prop_matmul_associative(
            a in small_matrix(3, 4),
            b in small_matrix(4, 2),
            c in small_matrix(2, 5),
        ) {
            let left = a.matmul(&b).matmul(&c);
            let right = a.matmul(&b.matmul(&c));
            prop_assert!(left.sub(&right).frobenius_norm() < 1e-9);
        }

        #[test]
        fn prop_transpose_product_rule(
            a in small_matrix(3, 4),
            b in small_matrix(4, 3),
        ) {
            // (AB)^T = B^T A^T
            let lhs = a.matmul(&b).transpose();
            let rhs = b.transpose().matmul(&a.transpose());
            prop_assert!(lhs.sub(&rhs).frobenius_norm() < 1e-10);
        }

        #[test]
        fn prop_gram_is_psd_diagonal(a in small_matrix(5, 3)) {
            // Diagonal of X^T X is non-negative.
            let g = a.gram();
            for j in 0..3 {
                prop_assert!(g[(j, j)] >= -1e-12);
            }
        }

        #[test]
        fn prop_frobenius_triangle_inequality(
            a in small_matrix(4, 4),
            b in small_matrix(4, 4),
        ) {
            prop_assert!(
                a.add(&b).frobenius_norm() <= a.frobenius_norm() + b.frobenius_norm() + 1e-12
            );
        }
    }
}
