//! Virtual-clock and traffic accounting for simulated MPC runs.
//!
//! The paper evaluates BGW timing by simulating all parties on a single
//! machine and charging a fixed latency (0.1 s) per message hop (Section VI,
//! Tables II/IV/V). In a synchronous protocol every party's messages within
//! a round travel in parallel, so the network cost is
//! `rounds * latency`; local computation is measured as wall time of the
//! concurrently-running party threads.

use std::collections::BTreeMap;
use std::time::Duration;

use serde::Serialize;

/// Per-phase traffic and timing breakdown.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct PhaseStats {
    /// Synchronous communication rounds spent in this phase.
    pub rounds: u64,
    /// Total point-to-point messages (over all parties). Under round-batched
    /// framing (the default) each non-empty frame is one message; under the
    /// per-element reference framing each field element is one message.
    pub messages: u64,
    /// Total payload bytes (over all parties).
    pub bytes: u64,
    /// Total field elements sent (over all parties). Identical across
    /// backends and frame modes — the mode-independent work measure that
    /// `messages` divides into frames.
    pub elems: u64,
    /// Wall time spent in this phase (max over parties).
    pub wall: Duration,
}

impl PhaseStats {
    /// Simulated time for this phase under a per-hop latency.
    pub fn simulated_time(&self, latency: Duration) -> Duration {
        self.wall + latency * self.rounds as u32
    }
}

/// Aggregated statistics of one MPC run.
#[derive(Clone, Debug, Default, Serialize)]
pub struct RunStats {
    /// Totals across the whole protocol.
    pub total: PhaseStats,
    /// Named phases (e.g. `"input"`, `"compute"`, `"dp_noise"`, `"open"`).
    pub phases: BTreeMap<String, PhaseStats>,
    /// The per-hop latency this run was configured with.
    pub latency: Duration,
}

impl RunStats {
    /// Total simulated time (wall + rounds * latency), the paper's
    /// "overall time" column.
    ///
    /// This assumes the paper's *uniform-latency model*: every message hop
    /// costs exactly `latency`, regardless of payload size, congestion, or
    /// which pair of parties it connects. Real networks are not uniform —
    /// the `netcheck_timing` experiment binary runs the same workload over
    /// loopback TCP and reports measured wall-clock next to this prediction
    /// so the model's accuracy can be checked empirically.
    pub fn simulated_time(&self) -> Duration {
        self.total.simulated_time(self.latency)
    }

    /// Simulated time attributed to one phase (the paper's "time for noise
    /// injection" column uses phase `"dp_noise"`). Returns zero if the phase
    /// never ran.
    pub fn phase_time(&self, name: &str) -> Duration {
        self.phases
            .get(name)
            .map(|p| p.simulated_time(self.latency))
            .unwrap_or_default()
    }
}

impl std::fmt::Display for RunStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} rounds, {} messages ({} elems), {:.2} MiB, simulated {:.2?} ({:?}/hop)",
            self.total.rounds,
            self.total.messages,
            self.total.elems,
            self.total.bytes as f64 / (1024.0 * 1024.0),
            self.simulated_time(),
            self.latency,
        )?;
        // Per-phase rows use the same units as the totals line: message
        // and element counts and MiB, not raw bytes.
        for (name, p) in &self.phases {
            writeln!(
                f,
                "  {name:<12} {:>3} rounds  {:>8} messages  {:>8} elems  {:>8.2} MiB  {:.2?}",
                p.rounds,
                p.messages,
                p.elems,
                p.bytes as f64 / (1024.0 * 1024.0),
                p.simulated_time(self.latency),
            )?;
        }
        Ok(())
    }
}

/// Per-party accumulator, merged into [`RunStats`] by the engine.
#[derive(Clone, Debug, Default)]
pub(crate) struct PartyStats {
    pub total: PhaseStats,
    pub phases: BTreeMap<String, PhaseStats>,
}

impl PartyStats {
    /// Record one exchange round: `messages` sent by this party carrying
    /// `bytes` payload (`elems` field elements), attributed to `phase`.
    pub fn record_round(&mut self, phase: &str, messages: u64, bytes: u64, elems: u64) {
        self.total.rounds += 1;
        self.total.messages += messages;
        self.total.bytes += bytes;
        self.total.elems += elems;
        let p = self.phases.entry(phase.to_string()).or_default();
        p.rounds += 1;
        p.messages += messages;
        p.bytes += bytes;
        p.elems += elems;
    }

    /// Attribute wall time to a phase.
    pub fn record_wall(&mut self, phase: &str, wall: Duration) {
        self.total.wall += wall;
        self.phases.entry(phase.to_string()).or_default().wall += wall;
    }
}

/// Merge per-party stats into run totals.
///
/// Rounds and wall time are maxima over parties (parties run concurrently in
/// lock-step); messages and bytes are sums (total network traffic).
pub(crate) fn merge(parties: Vec<PartyStats>, latency: Duration) -> RunStats {
    let mut out = RunStats {
        latency,
        ..Default::default()
    };
    for ps in parties {
        out.total.rounds = out.total.rounds.max(ps.total.rounds);
        out.total.wall = out.total.wall.max(ps.total.wall);
        out.total.messages += ps.total.messages;
        out.total.bytes += ps.total.bytes;
        out.total.elems += ps.total.elems;
        for (name, p) in ps.phases {
            let agg = out.phases.entry(name).or_default();
            agg.rounds = agg.rounds.max(p.rounds);
            agg.wall = agg.wall.max(p.wall);
            agg.messages += p.messages;
            agg.bytes += p.bytes;
            agg.elems += p.elems;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulated_time_combines_wall_and_rounds() {
        let p = PhaseStats {
            rounds: 10,
            messages: 0,
            bytes: 0,
            elems: 0,
            wall: Duration::from_millis(500),
        };
        assert_eq!(
            p.simulated_time(Duration::from_millis(100)),
            Duration::from_millis(1500)
        );
    }

    #[test]
    fn stats_serialize_and_display_consistent_units() {
        let mut a = PartyStats::default();
        a.record_round("open", 3, 3 * 1024 * 1024, 9);
        a.record_wall("open", Duration::from_millis(5));
        let merged = merge(vec![a], Duration::from_millis(100));

        let json = merged.to_json();
        assert!(json.contains("\"rounds\":1"));
        assert!(json.contains("\"open\""));
        assert!(json.contains("\"latency\":0.1"));

        let shown = format!("{merged}");
        // Totals and per-phase rows agree on units: MiB and message counts.
        assert!(shown.contains("3.00 MiB"), "{shown}");
        assert!(shown.lines().count() >= 2);
        let phase_row = shown
            .lines()
            .nth(1)
            .expect("RunStats Display should emit a per-phase row after the totals line");
        assert!(phase_row.contains("messages"), "{phase_row}");
        assert!(phase_row.contains("MiB"), "{phase_row}");
        assert!(!phase_row.contains("bytes"), "{phase_row}");
    }

    #[test]
    fn merge_maxes_rounds_and_sums_traffic() {
        let mut a = PartyStats::default();
        a.record_round("x", 3, 300, 30);
        a.record_round("x", 3, 300, 30);
        let mut b = PartyStats::default();
        b.record_round("x", 3, 300, 30);
        b.record_round("x", 3, 300, 30);
        b.record_wall("x", Duration::from_millis(7));
        let merged = merge(vec![a, b], Duration::from_millis(100));
        assert_eq!(merged.total.rounds, 2);
        assert_eq!(merged.total.messages, 12);
        assert_eq!(merged.total.bytes, 1200);
        assert_eq!(merged.total.elems, 120);
        assert_eq!(merged.total.wall, Duration::from_millis(7));
        assert_eq!(merged.simulated_time(), Duration::from_millis(207));
        assert_eq!(merged.phase_time("x"), Duration::from_millis(207));
        assert_eq!(merged.phase_time("absent"), Duration::ZERO);
    }
}
