//! A retained arithmetic-circuit IR with plaintext and BGW evaluators.
//!
//! The generic polynomial mechanism (Algorithm 3 for arbitrary polynomials)
//! compiles each monomial into a multiplication tree over the parties'
//! quantized inputs. The MPC evaluator batches all multiplications at the
//! same depth into a single degree-reduction round, so a degree-`lambda`
//! polynomial with any number of monomials costs `O(log-free lambda)` rounds
//! (sequential in depth, parallel in width).

use sqm_field::PrimeField;
use sqm_obs::prof::{self, BatchingReport};

use crate::engine::PartyCtx;

/// A wire in the circuit (index of the gate producing it).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Wire(usize);

/// One gate.
#[derive(Clone, Debug)]
enum Gate<F> {
    /// The `pos`-th private input of party `owner`.
    Input {
        owner: usize,
        pos: usize,
    },
    /// A public constant.
    Const(F),
    Add(Wire, Wire),
    Sub(Wire, Wire),
    Mul(Wire, Wire),
    /// Multiply by a public constant.
    MulConst(Wire, F),
    /// Add a public constant.
    AddConst(Wire, F),
}

/// An arithmetic circuit over `n_parties` private input vectors.
#[derive(Clone, Debug)]
pub struct Circuit<F: PrimeField> {
    gates: Vec<Gate<F>>,
    outputs: Vec<Wire>,
    input_counts: Vec<usize>,
    /// `mul_level[g]`: number of sequential multiplication rounds needed
    /// before gate `g`'s value is available.
    mul_level: Vec<u32>,
}

/// Builder for [`Circuit`].
pub struct CircuitBuilder<F: PrimeField> {
    gates: Vec<Gate<F>>,
    outputs: Vec<Wire>,
    input_counts: Vec<usize>,
    mul_level: Vec<u32>,
}

impl<F: PrimeField> CircuitBuilder<F> {
    /// A builder for a circuit over `n_parties` input owners.
    pub fn new(n_parties: usize) -> Self {
        CircuitBuilder {
            gates: Vec::new(),
            outputs: Vec::new(),
            input_counts: vec![0; n_parties],
            mul_level: Vec::new(),
        }
    }

    fn push(&mut self, gate: Gate<F>, level: u32) -> Wire {
        self.gates.push(gate);
        self.mul_level.push(level);
        Wire(self.gates.len() - 1)
    }

    fn level(&self, w: Wire) -> u32 {
        self.mul_level[w.0]
    }

    /// Declare the next private input of `owner`.
    pub fn input(&mut self, owner: usize) -> Wire {
        assert!(
            owner < self.input_counts.len(),
            "owner {owner} out of range"
        );
        let pos = self.input_counts[owner];
        self.input_counts[owner] += 1;
        self.push(Gate::Input { owner, pos }, 0)
    }

    /// A public constant.
    pub fn constant(&mut self, c: F) -> Wire {
        self.push(Gate::Const(c), 0)
    }

    pub fn add(&mut self, a: Wire, b: Wire) -> Wire {
        let l = self.level(a).max(self.level(b));
        self.push(Gate::Add(a, b), l)
    }

    pub fn sub(&mut self, a: Wire, b: Wire) -> Wire {
        let l = self.level(a).max(self.level(b));
        self.push(Gate::Sub(a, b), l)
    }

    pub fn mul(&mut self, a: Wire, b: Wire) -> Wire {
        let l = self.level(a).max(self.level(b)) + 1;
        self.push(Gate::Mul(a, b), l)
    }

    pub fn mul_const(&mut self, a: Wire, c: F) -> Wire {
        let l = self.level(a);
        self.push(Gate::MulConst(a, c), l)
    }

    pub fn add_const(&mut self, a: Wire, c: F) -> Wire {
        let l = self.level(a);
        self.push(Gate::AddConst(a, c), l)
    }

    /// A balanced product tree over `factors` (minimizes multiplication
    /// depth: `ceil(log2(len))` rounds).
    pub fn product(&mut self, factors: &[Wire]) -> Wire {
        assert!(!factors.is_empty(), "product of zero factors");
        let mut layer = factors.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for chunk in layer.chunks(2) {
                next.push(if chunk.len() == 2 {
                    self.mul(chunk[0], chunk[1])
                } else {
                    chunk[0]
                });
            }
            layer = next;
        }
        layer[0]
    }

    /// Sum of wires (free).
    pub fn sum(&mut self, terms: &[Wire]) -> Wire {
        assert!(!terms.is_empty(), "sum of zero terms");
        let mut acc = terms[0];
        for &t in &terms[1..] {
            acc = self.add(acc, t);
        }
        acc
    }

    /// Mark a wire as a circuit output.
    pub fn output(&mut self, w: Wire) {
        self.outputs.push(w);
    }

    /// Finalize.
    pub fn build(self) -> Circuit<F> {
        assert!(!self.outputs.is_empty(), "circuit has no outputs");
        Circuit {
            gates: self.gates,
            outputs: self.outputs,
            input_counts: self.input_counts,
            mul_level: self.mul_level,
        }
    }
}

impl<F: PrimeField> Circuit<F> {
    /// How many private inputs each party owns.
    pub fn input_counts(&self) -> &[usize] {
        &self.input_counts
    }

    /// Number of outputs.
    pub fn n_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Multiplicative depth (communication rounds the MPC evaluation needs
    /// for multiplications).
    pub fn mul_depth(&self) -> u32 {
        self.outputs
            .iter()
            .map(|w| self.mul_level[w.0])
            .max()
            .unwrap_or(0)
    }

    /// Total number of multiplication gates.
    pub fn n_mul_gates(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| matches!(g, Gate::Mul(_, _)))
            .count()
    }

    /// Independent-multiplication width of each sequential mul round, in
    /// round order: `widths[l-1]` is the number of `Mul` gates the MPC
    /// evaluator batches into the level-`l` degree reduction. The widths
    /// always sum to [`Circuit::n_mul_gates`], and their count equals
    /// [`Circuit::mul_depth`] whenever every multiplication feeds an
    /// output.
    pub fn mul_level_widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = Vec::new();
        for (i, gate) in self.gates.iter().enumerate() {
            if matches!(gate, Gate::Mul(_, _)) {
                let level = self.mul_level[i] as usize;
                if widths.len() < level {
                    widths.resize(level, 0);
                }
                widths[level - 1] += 1;
            }
        }
        widths
    }

    /// The width-parallel gate schedule: `schedule[l-1]` lists the `Mul`
    /// gate indices the MPC evaluator batches into the level-`l` degree
    /// reduction, in gate order. One forward pass over the gate list,
    /// computed once per evaluation instead of one rescan per level; the
    /// per-level lengths are exactly [`Circuit::mul_level_widths`].
    fn mul_schedule(&self) -> Vec<Vec<usize>> {
        let mut schedule: Vec<Vec<usize>> = Vec::new();
        for (i, gate) in self.gates.iter().enumerate() {
            if matches!(gate, Gate::Mul(_, _)) {
                let level = self.mul_level[i] as usize;
                if schedule.len() < level {
                    schedule.resize_with(level, Vec::new);
                }
                schedule[level - 1].push(i);
            }
        }
        schedule
    }

    /// The batching-opportunity analysis for this circuit evaluated over
    /// `n_parties` parties: the per-round width histogram and the
    /// message-count reduction round-batched multiplication frames
    /// (ROADMAP item 1) would achieve over one-round-per-mul execution.
    pub fn batching_report(&self, n_parties: usize) -> BatchingReport {
        BatchingReport::from_level_widths(self.mul_level_widths(), n_parties)
    }

    /// Evaluate in the clear (reference semantics for tests and the
    /// plaintext VFL backend). `inputs[p]` are party `p`'s private inputs.
    pub fn eval_plain(&self, inputs: &[Vec<F>]) -> Vec<F> {
        assert_eq!(inputs.len(), self.input_counts.len(), "wrong party count");
        for (p, (inp, &want)) in inputs.iter().zip(&self.input_counts).enumerate() {
            assert_eq!(inp.len(), want, "party {p}: wrong input count");
        }
        let mut values: Vec<F> = Vec::with_capacity(self.gates.len());
        for gate in &self.gates {
            let v = match *gate {
                Gate::Input { owner, pos } => inputs[owner][pos],
                Gate::Const(c) => c,
                Gate::Add(a, b) => values[a.0] + values[b.0],
                Gate::Sub(a, b) => values[a.0] - values[b.0],
                Gate::Mul(a, b) => values[a.0] * values[b.0],
                Gate::MulConst(a, c) => values[a.0] * c,
                Gate::AddConst(a, c) => values[a.0] + c,
            };
            values.push(v);
        }
        self.outputs.iter().map(|w| values[w.0]).collect()
    }

    /// Evaluate under BGW: inputs are shared (one round), multiplications
    /// run level-by-level with one batched degree reduction per level, and
    /// the caller receives *shares* of the outputs (open them with
    /// [`PartyCtx::open`], possibly after adding noise shares).
    pub fn eval_mpc(&self, ctx: &mut PartyCtx<F>, my_inputs: &[F]) -> Vec<F> {
        assert_eq!(
            ctx.n,
            self.input_counts.len(),
            "circuit built for {} parties, engine has {}",
            self.input_counts.len(),
            ctx.n
        );
        // Cost profiling (when installed): per-gate-kind counts, scratch
        // allocation sizes, and the batching-opportunity report. Purely
        // observational — the evaluation below is identical either way.
        let profiling = prof::is_active();
        if profiling {
            const KINDS: [&str; 7] = [
                "input",
                "const",
                "add",
                "sub",
                "mul",
                "mul_const",
                "add_const",
            ];
            let mut counts = [0u64; 7];
            for gate in &self.gates {
                let k = match gate {
                    Gate::Input { .. } => 0,
                    Gate::Const(_) => 1,
                    Gate::Add(_, _) => 2,
                    Gate::Sub(_, _) => 3,
                    Gate::Mul(_, _) => 4,
                    Gate::MulConst(_, _) => 5,
                    Gate::AddConst(_, _) => 6,
                };
                counts[k] += 1;
            }
            for (kind, &count) in KINDS.iter().zip(&counts) {
                if count > 0 {
                    prof::record(&format!("circuit;gates;{kind}"), count, count);
                }
            }
            prof::record("circuit;alloc;values", 1, self.gates.len() as u64);
            prof::set_batching_report(self.batching_report(ctx.n));
        }

        // Input phase: every party shares its inputs simultaneously.
        let contributions = ctx.share_all_uneven(my_inputs, &self.input_counts);

        let mut values: Vec<Option<F>> = vec![None; self.gates.len()];

        // Evaluate all local (non-mul) gates whose operands are ready.
        // Gates are topologically ordered, so one forward pass suffices.
        let local_pass = |values: &mut Vec<Option<F>>| {
            for (i, gate) in self.gates.iter().enumerate() {
                if values[i].is_some() {
                    continue;
                }
                let v = match *gate {
                    Gate::Input { owner, pos } => Some(contributions[owner][pos]),
                    Gate::Const(c) => Some(c),
                    Gate::Add(a, b) => match (values[a.0], values[b.0]) {
                        (Some(x), Some(y)) => Some(x + y),
                        _ => None,
                    },
                    Gate::Sub(a, b) => match (values[a.0], values[b.0]) {
                        (Some(x), Some(y)) => Some(x - y),
                        _ => None,
                    },
                    Gate::MulConst(a, c) => values[a.0].map(|x| x * c),
                    Gate::AddConst(a, c) => values[a.0].map(|x| x + c),
                    Gate::Mul(_, _) => None, // handled by batches
                };
                values[i] = v;
            }
        };

        // Width-parallel gate scheduling: the mul gates of each sequential
        // level are grouped once up front; each level's independent local
        // products are computed (across the engine's worker pool when the
        // batch is wide) and shared/reduced in a single round.
        let schedule = self.mul_schedule();
        local_pass(&mut values);
        for (li, batch) in schedule.iter().enumerate() {
            let level = li + 1;
            if batch.is_empty() {
                continue;
            }
            let gate_product = |i: usize, values: &[Option<F>]| match self.gates[i] {
                Gate::Mul(a, b) => {
                    let x = values[a.0].expect("mul operand not ready");
                    let y = values[b.0].expect("mul operand not ready");
                    x * y
                }
                _ => unreachable!("mul schedule lists only Mul gates"),
            };
            let locals: Vec<F> = match ctx.batch_options() {
                Some(opts) if opts.parallel(batch.len()) => {
                    let mut out = vec![F::ZERO; batch.len()];
                    let chunk = batch.len().div_ceil(opts.workers);
                    std::thread::scope(|s| {
                        let values = &values;
                        let gate_product = &gate_product;
                        for (slice, idxs) in out.chunks_mut(chunk).zip(batch.chunks(chunk)) {
                            s.spawn(move || {
                                for (o, &i) in slice.iter_mut().zip(idxs) {
                                    *o = gate_product(i, values);
                                }
                            });
                        }
                    });
                    out
                }
                _ => batch.iter().map(|&i| gate_product(i, &values)).collect(),
            };
            if profiling {
                prof::record(
                    &format!("circuit;mul;layer{level:04}"),
                    1,
                    batch.len() as u64,
                );
                prof::record("circuit;alloc;mul_locals", 1, batch.len() as u64);
            }
            let reduced = ctx.reduce_degree(&locals);
            for (&i, r) in batch.iter().zip(reduced) {
                values[i] = Some(r);
            }
            local_pass(&mut values);
        }

        self.outputs
            .iter()
            .map(|w| values[w.0].expect("output not evaluated"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{MpcConfig, MpcEngine};
    use sqm_field::M61;
    use std::time::Duration;

    fn engine(n: usize) -> MpcEngine {
        MpcEngine::new(MpcConfig::semi_honest(n).with_latency(Duration::ZERO))
    }

    /// (x0 + 2)*(y0 - z0) + 5, inputs owned by parties 0, 1, 2.
    fn sample_circuit() -> Circuit<M61> {
        let mut b = CircuitBuilder::<M61>::new(3);
        let x = b.input(0);
        let y = b.input(1);
        let z = b.input(2);
        let x2 = b.add_const(x, M61::from_u64(2));
        let yz = b.sub(y, z);
        let p = b.mul(x2, yz);
        let out = b.add_const(p, M61::from_u64(5));
        b.output(out);
        b.build()
    }

    #[test]
    fn plain_eval() {
        let c = sample_circuit();
        let out = c.eval_plain(&[
            vec![M61::from_u64(3)],
            vec![M61::from_u64(10)],
            vec![M61::from_u64(4)],
        ]);
        assert_eq!(out[0].to_canonical(), (3 + 2) * (10 - 4) + 5);
    }

    #[test]
    fn mpc_matches_plain() {
        let c = sample_circuit();
        let expect = c.eval_plain(&[
            vec![M61::from_u64(3)],
            vec![M61::from_u64(10)],
            vec![M61::from_u64(4)],
        ]);
        let c2 = c.clone();
        let run = engine(3).run::<M61, _, _>(move |ctx| {
            let my_inputs = vec![M61::from_u64([3u64, 10, 4][ctx.id])];
            let shares = c2.eval_mpc(ctx, &my_inputs);
            ctx.open(&shares)
        });
        for out in run.outputs {
            assert_eq!(out, expect);
        }
    }

    #[test]
    fn product_tree_depth_is_logarithmic() {
        let mut b = CircuitBuilder::<M61>::new(1);
        let factors: Vec<Wire> = (0..8).map(|_| b.input(0)).collect();
        let p = b.product(&factors);
        b.output(p);
        let c = b.build();
        assert_eq!(c.mul_depth(), 3); // log2(8)
        assert_eq!(c.n_mul_gates(), 7);
    }

    #[test]
    fn degree_five_monomial_mpc() {
        // x^2 * y^3 with x from party 0, y from party 1.
        let mut b = CircuitBuilder::<M61>::new(2);
        let x = b.input(0);
        let y = b.input(1);
        let p = b.product(&[x, x, y, y, y]);
        b.output(p);
        let c = b.build();

        let expect = 2u64.pow(2) * 3u64.pow(3);
        let run = engine(2).run::<M61, _, _>(move |ctx| {
            let my_inputs = vec![M61::from_u64(if ctx.id == 0 { 2 } else { 3 })];
            let shares = c.eval_mpc(ctx, &my_inputs);
            ctx.open(&shares)
        });
        for out in run.outputs {
            assert_eq!(out[0].to_canonical(), expect as u128);
        }
    }

    #[test]
    fn multiple_outputs() {
        let mut b = CircuitBuilder::<M61>::new(2);
        let x = b.input(0);
        let y = b.input(1);
        let s = b.add(x, y);
        let p = b.mul(x, y);
        b.output(s);
        b.output(p);
        let c = b.build();
        let out = c.eval_plain(&[vec![M61::from_u64(6)], vec![M61::from_u64(7)]]);
        assert_eq!(out[0].to_canonical(), 13);
        assert_eq!(out[1].to_canonical(), 42);
    }

    #[test]
    fn rounds_scale_with_depth_not_width() {
        // 16 independent products of pairs: depth 1, so input + 1 reduction.
        let mut b = CircuitBuilder::<M61>::new(2);
        for _ in 0..16 {
            let x = b.input(0);
            let y = b.input(1);
            let p = b.mul(x, y);
            b.output(p);
        }
        let c = b.build();
        assert_eq!(c.mul_depth(), 1);
        let run = engine(2).run::<M61, _, _>(move |ctx| {
            let my_inputs = vec![M61::from_u64(ctx.id as u64 + 2); 16];
            let shares = c.eval_mpc(ctx, &my_inputs);
            ctx.open(&shares)
        });
        // share_all + 1 reduction + open = 3 rounds.
        assert_eq!(run.stats.total.rounds, 3);
        for out in run.outputs {
            assert!(out.iter().all(|v| v.to_canonical() == 6));
        }
    }

    #[test]
    fn batching_report_totals_match_circuit_invariants() {
        // Balanced product tree over 8 factors: widths 4, 2, 1.
        let mut b = CircuitBuilder::<M61>::new(1);
        let factors: Vec<Wire> = (0..8).map(|_| b.input(0)).collect();
        let p = b.product(&factors);
        b.output(p);
        let c = b.build();
        let report = c.batching_report(4);
        assert_eq!(report.level_widths, vec![4, 2, 1]);
        assert_eq!(report.width_histogram, vec![(1, 1), (2, 1), (4, 1)]);
        assert_eq!(report.n_mul_gates, c.n_mul_gates());
        assert_eq!(report.mul_depth as u32, c.mul_depth());
        // 4 parties: n(n-1) = 12 reduce-degree messages per round.
        assert_eq!(report.messages_unbatched, 7 * 12);
        assert_eq!(report.messages_batched, 3 * 12);

        // A wide-but-shallow circuit batches 16 muls into one round.
        let mut b = CircuitBuilder::<M61>::new(2);
        for _ in 0..16 {
            let x = b.input(0);
            let y = b.input(1);
            let p = b.mul(x, y);
            b.output(p);
        }
        let c = b.build();
        let report = c.batching_report(3);
        assert_eq!(report.level_widths, vec![16]);
        assert_eq!(report.n_mul_gates, c.n_mul_gates());
        assert_eq!(report.mul_depth as u32, c.mul_depth());
        assert!((report.reduction_factor() - 16.0).abs() < 1e-12);

        // The sample circuit's single mul: no batching opportunity.
        let report = sample_circuit().batching_report(3);
        assert_eq!(report.n_mul_gates, sample_circuit().n_mul_gates());
        assert_eq!(report.mul_depth as u32, sample_circuit().mul_depth());
        assert_eq!(report.messages_unbatched, report.messages_batched);
    }

    #[test]
    fn mul_schedule_widths_match_batching_report_predictions() {
        // The widths the evaluator actually batches must equal the
        // BatchingReport's per-level predictions, gate for gate.
        let circuits: Vec<Circuit<M61>> = vec![
            sample_circuit(),
            {
                let mut b = CircuitBuilder::<M61>::new(1);
                let factors: Vec<Wire> = (0..8).map(|_| b.input(0)).collect();
                let p = b.product(&factors);
                b.output(p);
                b.build()
            },
            {
                let mut b = CircuitBuilder::<M61>::new(2);
                for _ in 0..16 {
                    let x = b.input(0);
                    let y = b.input(1);
                    let p = b.mul(x, y);
                    b.output(p);
                }
                b.build()
            },
        ];
        for c in circuits {
            let schedule = c.mul_schedule();
            let widths: Vec<usize> = schedule.iter().map(Vec::len).collect();
            assert_eq!(widths, c.mul_level_widths());
            assert_eq!(widths, c.batching_report(4).level_widths);
            assert_eq!(widths.iter().sum::<usize>(), c.n_mul_gates());
            // Gate order within a level is ascending (deterministic batch).
            for batch in &schedule {
                assert!(batch.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn eval_mpc_identical_across_batching_modes() {
        use crate::engine::Batching;
        // Deep + wide circuit: (prod of 8 factors) plus 16 independent
        // pair-products, evaluated under the batched default, a stressed
        // worker pool, and the per-element reference mode.
        let mut b = CircuitBuilder::<M61>::new(3);
        let factors: Vec<Wire> = (0..8).map(|k| b.input(k % 3)).collect();
        let p = b.product(&factors);
        b.output(p);
        for _ in 0..16 {
            let x = b.input(0);
            let y = b.input(1);
            let q = b.mul(x, y);
            b.output(q);
        }
        let c = b.build();
        let inputs_of = |id: usize| -> Vec<M61> {
            (0..c.input_counts()[id] as u64)
                .map(|k| M61::from_u64(2 + k % 5))
                .collect()
        };
        let base = MpcConfig::semi_honest(3).with_latency(Duration::ZERO);
        let run = |cfg: MpcConfig| {
            let c = c.clone();
            MpcEngine::new(cfg).run::<M61, _, _>(move |ctx| {
                let shares = c.eval_mpc(ctx, &inputs_of(ctx.id));
                ctx.open(&shares)
            })
        };
        let batched = run(base.clone());
        let reference = run(base.clone().with_batching(Batching::Off));
        let stressed =
            run(base
                .clone()
                .with_batching(Batching::PerRound(crate::engine::BatchOptions {
                    workers: 3,
                    min_parallel_width: 1,
                })));
        assert_eq!(batched.outputs, reference.outputs);
        assert_eq!(batched.outputs, stressed.outputs);
        assert_eq!(batched.stats.total.rounds, reference.stats.total.rounds);
        assert_eq!(batched.stats.total.bytes, reference.stats.total.bytes);
        assert_eq!(batched.stats.total.elems, reference.stats.total.elems);
        assert_eq!(reference.stats.total.messages, reference.stats.total.elems);
        let expect = c.eval_plain(&[inputs_of(0), inputs_of(1), inputs_of(2)]);
        assert_eq!(batched.outputs[0], expect);
    }

    #[test]
    fn negative_values_via_centered_encoding() {
        let mut b = CircuitBuilder::<M61>::new(2);
        let x = b.input(0);
        let y = b.input(1);
        let p = b.mul(x, y);
        b.output(p);
        let c = b.build();
        let out = c.eval_plain(&[vec![M61::from_i128(-4)], vec![M61::from_i128(5)]]);
        assert_eq!(out[0].to_centered_i128(), -20);
    }

    #[test]
    #[should_panic(expected = "no outputs")]
    fn empty_circuit_rejected() {
        CircuitBuilder::<M61>::new(1).build();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use sqm_field::{PrimeField, M61};

    // Random linear+quadratic expression over 3 single-owner inputs,
    // checked against direct field arithmetic.
    proptest! {
        #[test]
        fn prop_plain_eval_matches_reference(
            x in -1000i64..1000,
            y in -1000i64..1000,
            z in -1000i64..1000,
            c1 in -50i64..50,
            c2 in -50i64..50,
        ) {
            let mut b = CircuitBuilder::<M61>::new(3);
            let wx = b.input(0);
            let wy = b.input(1);
            let wz = b.input(2);
            // expr = c1*x*y + c2*z + (x - y)*z
            let xy = b.mul(wx, wy);
            let t1 = b.mul_const(xy, M61::from_i128(c1 as i128));
            let t2 = b.mul_const(wz, M61::from_i128(c2 as i128));
            let xmy = b.sub(wx, wy);
            let t3 = b.mul(xmy, wz);
            let s1 = b.add(t1, t2);
            let out = b.add(s1, t3);
            b.output(out);
            let circ = b.build();
            let got = circ.eval_plain(&[
                vec![M61::from_i128(x as i128)],
                vec![M61::from_i128(y as i128)],
                vec![M61::from_i128(z as i128)],
            ])[0];
            let expect = (c1 as i128) * (x as i128) * (y as i128)
                + (c2 as i128) * (z as i128)
                + ((x - y) as i128) * (z as i128);
            prop_assert_eq!(got.to_centered_i128(), expect);
        }

        #[test]
        fn prop_product_tree_matches_pow(
            base in -20i64..20,
            exp in 1u32..7,
        ) {
            let mut b = CircuitBuilder::<M61>::new(1);
            let w = b.input(0);
            let factors = vec![w; exp as usize];
            let p = b.product(&factors);
            b.output(p);
            let circ = b.build();
            let got = circ.eval_plain(&[vec![M61::from_i128(base as i128)]])[0];
            let expect = (base as i128).pow(exp);
            prop_assert_eq!(got.to_centered_i128(), expect);
        }
    }
}
