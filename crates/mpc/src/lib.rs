//! Semi-honest BGW multiparty computation over a simulated network.
//!
//! SQM invokes MPC as a black box (Section IV of the paper): the clients
//! secret-share their quantized columns and locally-sampled Skellam noise,
//! jointly evaluate an arithmetic circuit, and open only the perturbed
//! result. This crate provides that black box:
//!
//! * [`shamir`] — Shamir secret sharing and Lagrange reconstruction.
//! * [`transport`] — party-to-party networking, re-exported from `sqm-net`:
//!   a [`transport::Transport`] trait with two backends (the original
//!   full-mesh in-process channel mesh and a loopback-TCP backend) plus a
//!   deterministic fault injector, all with per-round, per-message and
//!   per-byte accounting. Backend selection lives on [`MpcConfig`].
//! * [`engine`] — the SPMD party runtime: spawn `n` party threads, run the
//!   same protocol program in each, collect outputs and [`stats::RunStats`].
//!   Transport failures surface as typed [`TransportError`]s from
//!   [`MpcEngine::try_run`] (or a diagnostic panic from [`MpcEngine::run`]).
//!   Multiplication uses GRR degree reduction (`t < n/2`); vector operations
//!   (element-wise products, inner products) are batched into single rounds,
//!   which is what makes covariance computation `O(n^2)` *communication*
//!   instead of `O(m n^2)`.
//! * [`circuit`] — a small retained arithmetic-circuit IR with plaintext and
//!   MPC evaluators, used by the generic polynomial mechanism.
//! * [`additive`] — a second backend: SPDZ-style additive sharing with
//!   Beaver triples from a trusted preprocessing dealer, demonstrating the
//!   paper's "replace BGW with any semi-honest MPC" claim.
//! * [`stats`] — virtual-clock accounting. The paper simulates parties on
//!   one machine and charges 0.1 s per message hop; [`stats::RunStats`]
//!   reproduces that model (`simulated_time = wall + rounds * latency`).

pub mod additive;
pub mod circuit;
pub mod engine;
pub mod shamir;
pub mod stats;
pub mod transport;
pub mod wire;

pub use sqm_net as net;

pub use additive::{AdditiveCtx, AdditiveEngine, AdditiveRun};
pub use engine::{BatchOptions, Batching, MpcConfig, MpcEngine, MpcRun, PartyCtx};
pub use shamir::{reconstruct, share_secret, share_secrets_batch, ShamirShare};
pub use sqm_net::fault::{CrashPoint, FaultSpec};
pub use sqm_net::transport::{FrameMode, NetBackend};
pub use sqm_net::{TcpOptions, TransportError};
pub use sqm_obs::live::LiveConfig;
pub use sqm_obs::prof::ProfConfig;
pub use stats::{PhaseStats, RunStats};
