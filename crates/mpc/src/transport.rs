//! Party-to-party transport — re-exported from [`sqm_net`].
//!
//! The full-mesh in-process channel transport that used to live here was
//! extracted into `sqm-net` behind the [`Transport`] trait, alongside a
//! loopback-TCP backend and a deterministic fault injector. The semantics
//! of the in-process mesh are unchanged (routing, per-pair FIFO, and the
//! exclude-loopback-and-empties traffic accounting are all covered by
//! tests in `sqm_net::channel`), with one upgrade: a dropped peer now
//! yields a typed [`TransportError`] naming the party and round instead of
//! the old `expect("party channel closed mid-protocol")` panic. The engine
//! converts that error into [`crate::MpcEngine::try_run`]'s `Err` value.

pub use sqm_net::channel::{mesh, ChannelEndpoint};
pub use sqm_net::transport::{build_mesh, NetBackend, RoundOutcome, Transport};
pub use sqm_net::{TcpOptions, TraceHeader, TransportError};

/// Historical name of the in-process mesh endpoint.
pub type Endpoint<F> = ChannelEndpoint<F>;

#[cfg(test)]
mod tests {
    use super::*;
    use sqm_field::{PrimeField, M61};

    #[test]
    fn legacy_paths_still_build_a_working_mesh() {
        // `mpc::transport::mesh` must keep returning connected in-process
        // endpoints (zero behavior change for existing callers).
        let mut endpoints = mesh::<M61>(2);
        let (a, b) = {
            let mut it = endpoints.iter_mut();
            (it.next().unwrap(), it.next().unwrap())
        };
        std::thread::scope(|s| {
            s.spawn(|| {
                let out = a.exchange(vec![vec![], vec![M61::from_u64(5)]]).unwrap();
                assert_eq!(out.incoming[1], vec![M61::from_u64(6)]);
            });
            s.spawn(|| {
                let out = b.exchange(vec![vec![M61::from_u64(6)], vec![]]).unwrap();
                assert_eq!(out.incoming[0], vec![M61::from_u64(5)]);
            });
        });
    }
}
