//! Full-mesh in-process transport between party threads.
//!
//! One unbounded crossbeam channel per ordered party pair. FIFO order per
//! pair plus the SPMD (same program order at every party) discipline of the
//! engine guarantee that the `k`-th receive from party `j` is the `k`-th
//! send of party `j` — no sequence numbers required.

use crossbeam::channel::{unbounded, Receiver, Sender};
use sqm_field::PrimeField;

/// The payload of one hop: a vector of field elements (possibly empty —
/// empty messages are "non-messages" and are not counted as traffic).
type Payload<F> = Vec<F>;

/// One party's view of the mesh.
pub struct Endpoint<F: PrimeField> {
    /// This party's index.
    pub id: usize,
    /// `senders[j]` delivers to party `j`'s `receivers[self.id]`.
    senders: Vec<Sender<Payload<F>>>,
    /// `receivers[i]` yields messages from party `i`.
    receivers: Vec<Receiver<Payload<F>>>,
}

impl<F: PrimeField> Endpoint<F> {
    /// Number of parties in the mesh.
    pub fn n_parties(&self) -> usize {
        self.senders.len()
    }

    /// One synchronous round: send `outgoing[j]` to each party `j`
    /// (including a loop-back to self) and receive one payload from every
    /// party. Returns `(incoming, messages_sent, bytes_sent)` where traffic
    /// counts exclude empty payloads and the loop-back.
    pub fn exchange(&self, outgoing: Vec<Payload<F>>) -> (Vec<Payload<F>>, u64, u64) {
        let n = self.n_parties();
        assert_eq!(outgoing.len(), n, "exchange: need one payload per party");
        let mut messages = 0u64;
        let mut bytes = 0u64;
        for (j, payload) in outgoing.into_iter().enumerate() {
            if j != self.id && !payload.is_empty() {
                messages += 1;
                bytes += crate::wire::encoded_len::<F>(payload.len());
            }
            self.senders[j]
                .send(payload)
                .expect("party channel closed mid-protocol");
        }
        let incoming = (0..n)
            .map(|i| {
                self.receivers[i]
                    .recv()
                    .expect("party channel closed mid-protocol")
            })
            .collect();
        (incoming, messages, bytes)
    }

    /// Broadcast the same payload to every other party and collect one from
    /// each (used for opening shares).
    pub fn broadcast(&self, payload: Payload<F>) -> (Vec<Payload<F>>, u64, u64) {
        let n = self.n_parties();
        self.exchange(vec![payload; n])
    }
}

/// Build a full mesh of `n` endpoints.
pub fn mesh<F: PrimeField>(n: usize) -> Vec<Endpoint<F>> {
    assert!(n >= 1);
    // channels[i][j]: the channel from party i to party j.
    let mut txs: Vec<Vec<Option<Sender<Payload<F>>>>> =
        (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
    let mut rxs: Vec<Vec<Option<Receiver<Payload<F>>>>> =
        (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
    for (i, tx_row) in txs.iter_mut().enumerate() {
        for (j, tx) in tx_row.iter_mut().enumerate() {
            let (s, r) = unbounded();
            *tx = Some(s);
            rxs[j][i] = Some(r);
        }
        let _ = i;
    }
    txs.into_iter()
        .zip(rxs)
        .enumerate()
        .map(|(id, (tx_row, rx_row))| Endpoint {
            id,
            senders: tx_row.into_iter().map(Option::unwrap).collect(),
            receivers: rx_row.into_iter().map(Option::unwrap).collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqm_field::M61;
    use std::thread;

    #[test]
    fn exchange_routes_correctly() {
        let endpoints = mesh::<M61>(3);
        let results: Vec<Vec<Vec<M61>>> = thread::scope(|s| {
            let handles: Vec<_> = endpoints
                .iter()
                .map(|ep| {
                    s.spawn(move || {
                        // Party i sends value 10*i + j to party j.
                        let out: Vec<Vec<M61>> = (0..3)
                            .map(|j| vec![M61::from_u64((10 * ep.id + j) as u64)])
                            .collect();
                        let (incoming, _, _) = ep.exchange(out);
                        incoming
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Party j receives from party i the value 10*i + j.
        for (j, incoming) in results.iter().enumerate() {
            for (i, payload) in incoming.iter().enumerate() {
                assert_eq!(payload, &vec![M61::from_u64((10 * i + j) as u64)]);
            }
        }
    }

    #[test]
    fn traffic_counts_exclude_loopback_and_empties() {
        let endpoints = mesh::<M61>(2);
        let (counts_a, counts_b) = thread::scope(|s| {
            let a = &endpoints[0];
            let b = &endpoints[1];
            let ha = s.spawn(move || {
                let (_, m, by) = a.exchange(vec![vec![M61::ONE; 5], vec![M61::ONE; 3]]);
                (m, by)
            });
            let hb = s.spawn(move || {
                let (_, m, by) = b.exchange(vec![vec![], vec![M61::ONE]]);
                (m, by)
            });
            (ha.join().unwrap(), hb.join().unwrap())
        });
        // A sent 3 elements to B (24 bytes); loop-back of 5 not counted.
        assert_eq!(counts_a, (1, 24));
        // B sent nothing to A (empty), loop-back of 1 not counted.
        assert_eq!(counts_b, (0, 0));
    }

    #[test]
    fn fifo_per_pair_across_rounds() {
        let endpoints = mesh::<M61>(2);
        thread::scope(|s| {
            let a = &endpoints[0];
            let b = &endpoints[1];
            s.spawn(move || {
                for round in 0..10u64 {
                    let (incoming, _, _) = a.exchange(vec![vec![], vec![M61::from_u64(round)]]);
                    assert_eq!(incoming[1], vec![M61::from_u64(round * 100)]);
                }
            });
            s.spawn(move || {
                for round in 0..10u64 {
                    let (incoming, _, _) =
                        b.exchange(vec![vec![M61::from_u64(round * 100)], vec![]]);
                    assert_eq!(incoming[0], vec![M61::from_u64(round)]);
                }
            });
        });
    }
}
