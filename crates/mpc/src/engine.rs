//! The BGW party runtime.
//!
//! [`MpcEngine::run`] spawns one thread per party, each executing the same
//! SPMD protocol program against its own [`PartyCtx`]. The context exposes
//! the BGW operations SQM needs:
//!
//! * linear operations on shares (local, free);
//! * batched multiplication and inner products with GRR degree reduction
//!   (one communication round per batch, `t < n/2`);
//! * input sharing (single-owner and simultaneous all-party);
//! * opening (reconstruction from all `n` shares).
//!
//! All vector operations are batched: one round moves one payload per
//! ordered party pair regardless of how many field elements it carries,
//! matching the paper's synchronous cost model.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqm_field::PrimeField;
use sqm_net::fault::FaultSpec;
use sqm_net::transport::{build_mesh, FrameMode, NetBackend, Transport};
use sqm_net::{TraceHeader, TransportError};
use sqm_obs::live::{self, LiveConfig};
use sqm_obs::metrics;
use sqm_obs::prof::{self, ProfConfig};
use sqm_obs::trace::{MsgStamp, PartyRecorder, Trace};

use crate::shamir::{lagrange_at_zero, share_secret, share_secrets_batch};
use crate::stats::{merge, PartyStats, RunStats};

/// Tuning knobs for the round-batched execution path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchOptions {
    /// Size of the per-party worker pool that wide batches of polynomial
    /// evaluations and Lagrange recombinations split across. `1` keeps all
    /// arithmetic on the party thread.
    pub workers: usize,
    /// Minimum batch width (field elements) before the worker pool is
    /// engaged; narrower batches run inline, where thread hand-off would
    /// cost more than it saves.
    pub min_parallel_width: usize,
}

impl Default for BatchOptions {
    /// Sized for the SPMD engine, where every party is already a thread:
    /// the pool only helps once the machine has cores to spare beyond the
    /// party threads, so the default halves the available parallelism and
    /// caps it at 4 — on small containers (1-2 cores) it degenerates to
    /// `workers: 1` and all arithmetic stays inline. Results are
    /// bit-identical for every worker count; this knob is wall-clock only.
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        BatchOptions {
            workers: (cores / 2).clamp(1, 4),
            min_parallel_width: 1024,
        }
    }
}

impl BatchOptions {
    /// Should a batch of `width` elements use the worker pool?
    pub(crate) fn parallel(&self, width: usize) -> bool {
        self.workers > 1 && width >= self.min_parallel_width.max(2)
    }
}

/// How the engine maps a round's field elements onto wire frames and
/// schedules the local arithmetic of that round.
///
/// Both modes run the **same** synchronous protocol: identical rounds,
/// identical payload bytes, identical RNG streams, identical opened values.
/// They differ only in wire framing — and therefore in the `messages`
/// column of [`RunStats`] and in the physical frame count over TCP — and in
/// whether wide batches may use a worker pool. The `batch_equivalence`
/// suite in `sqm-vfl` pins this contract down bit-for-bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Batching {
    /// Reference mode: one wire message per field element
    /// ([`FrameMode::PerElement`]) and strictly sequential per-secret
    /// arithmetic — the classical one-message-per-element cost model that
    /// the batched path is diffed against.
    Off,
    /// Round-batched mode (the default): one frame per link per round
    /// carrying all of that round's elements, with wide batches of
    /// polynomial evaluations split across a small worker pool while the
    /// transport drives the mesh.
    PerRound(BatchOptions),
}

impl Default for Batching {
    fn default() -> Self {
        Batching::PerRound(BatchOptions::default())
    }
}

impl Batching {
    /// The wire framing this mode selects on every transport endpoint.
    pub fn frame_mode(&self) -> FrameMode {
        match self {
            Batching::Off => FrameMode::PerElement,
            Batching::PerRound(_) => FrameMode::PerRound,
        }
    }
}

/// Configuration of a BGW session.
#[derive(Clone, Debug)]
pub struct MpcConfig {
    /// Number of parties `n`.
    pub n_parties: usize,
    /// Sharing threshold `t`; BGW multiplication requires `2t < n`.
    pub threshold: usize,
    /// Simulated per-hop message latency (the paper fixes 0.1 s).
    pub latency: Duration,
    /// Seed for the parties' share-randomness streams.
    pub seed: u64,
    /// Record a structured [`Trace`] of the run (spans and per-round
    /// records on the simulated clock). Off by default; the accounting in
    /// [`RunStats`] is always on.
    pub trace: bool,
    /// Per-party bound on trace detail records (spans + rounds + net
    /// events). `None` uses [`sqm_obs::trace::DEFAULT_EVENT_CAP`]. Dropped
    /// detail is counted (`PartyTrace::dropped_events`, metric
    /// `obs.trace.dropped_events`); trace summaries stay exact regardless.
    pub trace_event_cap: Option<usize>,
    /// Transport backend the parties communicate over. The protocol is
    /// backend-agnostic; message/byte counts are identical across backends.
    pub backend: NetBackend,
    /// Optional deterministic fault plan injected over the backend.
    pub faults: Option<FaultSpec>,
    /// Stream live telemetry for this run (see [`sqm_obs::live`]): the
    /// engines publish per-round events into the process-global collector,
    /// the stall watchdog brackets the run, and failures dump a flight
    /// recorder. `None` (the default) publishes nothing and costs one
    /// relaxed atomic load per round. Accounting (`RunStats`, traces) is
    /// bit-identical either way.
    pub live: Option<LiveConfig>,
    /// Attach the deterministic cost profiler (see [`sqm_obs::prof`]) to
    /// runs under this config: the engine installs the process-global
    /// profiler at run start and the hot paths attribute per-phase
    /// exchange/round traffic, degree reductions, and bulk field ops to
    /// collapsed-stack paths. `None` (the default) records nothing and
    /// costs one relaxed atomic load per hook; protocol bits and
    /// [`RunStats`] are identical either way.
    pub prof: Option<ProfConfig>,
    /// Wire framing and gate-scheduling mode (see [`Batching`]). The
    /// round-batched default and the per-element reference mode are
    /// protocol-equivalent; only the message accounting, the physical TCP
    /// frame count, and local parallelism differ.
    pub batching: Batching,
}

impl MpcConfig {
    /// Maximal semi-honest threshold: `t = floor((n-1)/2)`, 0.1 s latency.
    ///
    /// **Secrecy caveat:** with `n_parties = 2` the threshold degenerates to
    /// `t = 0`, i.e. degree-0 "shares" that *are* the secret — the protocol
    /// stays correct but provides **no secrecy between the two parties**
    /// (information-theoretic BGW fundamentally needs `n >= 3`). Real
    /// two-party deployments should use the [`crate::additive`] backend
    /// (full-threshold additive sharing) or add a neutral third compute
    /// party.
    pub fn semi_honest(n_parties: usize) -> Self {
        assert!(
            n_parties >= 2,
            "BGW needs at least 2 parties, got {n_parties}"
        );
        MpcConfig {
            n_parties,
            threshold: (n_parties - 1) / 2,
            latency: Duration::from_millis(100),
            seed: 0x5153_4D00, // "SQM"
            trace: false,
            trace_event_cap: None,
            backend: NetBackend::InProcess,
            faults: None,
            live: None,
            prof: None,
            batching: Batching::default(),
        }
    }

    /// Override the simulated latency.
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.latency = latency;
        self
    }

    /// Override the randomness seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Turn structured trace recording on or off.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Bound the trace detail kept per party (see
    /// [`MpcConfig::trace_event_cap`]).
    pub fn with_trace_event_cap(mut self, cap: usize) -> Self {
        self.trace_event_cap = Some(cap);
        self
    }

    /// Select the transport backend.
    pub fn with_backend(mut self, backend: NetBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Inject a deterministic fault plan over the backend.
    pub fn with_faults(mut self, faults: Option<FaultSpec>) -> Self {
        self.faults = faults;
        self
    }

    /// Stream live telemetry for runs under this config (see
    /// [`sqm_obs::live`]).
    pub fn with_live(mut self, live: Option<LiveConfig>) -> Self {
        self.live = live;
        self
    }

    /// Attach the deterministic cost profiler (see [`sqm_obs::prof`]).
    pub fn with_prof(mut self, prof: Option<ProfConfig>) -> Self {
        self.prof = prof;
        self
    }

    /// Select the wire framing / gate-scheduling mode (see [`Batching`]).
    pub fn with_batching(mut self, batching: Batching) -> Self {
        self.batching = batching;
        self
    }

    fn validate(&self) {
        assert!(self.n_parties >= 2, "need at least 2 parties");
        if let Batching::PerRound(opts) = self.batching {
            assert!(opts.workers >= 1, "batching needs at least one worker");
        }
        assert!(
            2 * self.threshold < self.n_parties,
            "BGW multiplication requires 2t < n (t={}, n={})",
            self.threshold,
            self.n_parties
        );
    }
}

/// The result of a run: each party's return value plus aggregate statistics.
#[derive(Debug)]
pub struct MpcRun<T> {
    /// `outputs[i]` is party `i`'s return value.
    pub outputs: Vec<T>,
    /// Rounds / traffic / virtual-clock accounting.
    pub stats: RunStats,
    /// Structured per-party trace (only when [`MpcConfig::trace`] is set).
    /// Its merged summary reproduces `stats.simulated_time()` exactly.
    pub trace: Option<Trace>,
}

/// What [`MpcEngine::try_run_on`] returns on success: the run itself plus
/// the party mesh, handed back so the next run can reuse it.
pub type RunOnMesh<F, T> = (MpcRun<T>, Vec<Box<dyn Transport<F>>>);

/// The BGW engine. Construct once, run protocol programs.
pub struct MpcEngine {
    config: MpcConfig,
}

/// Panic payload a party thread aborts with when its transport fails.
/// [`MpcEngine::try_run`] catches it and converts it back into the typed
/// [`TransportError`]; every other panic payload is propagated unchanged.
pub(crate) struct PartyAbort(pub(crate) TransportError);

/// Install (once, process-wide) a panic hook that stays silent for
/// [`PartyAbort`] unwinds — they are controlled error returns, not bugs —
/// and delegates every other panic to the previously installed hook.
pub(crate) fn install_quiet_abort_hook() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<PartyAbort>().is_none() {
                previous(info);
            }
        }));
    });
}

/// Rank errors for reporting when several parties fail at once: the root
/// cause (a crash, an exhausted retransmit budget) outranks the secondary
/// disconnects the survivors observe.
pub(crate) fn error_priority(e: &TransportError) -> u8 {
    match e {
        TransportError::Crashed { .. } => 6,
        TransportError::RetransmitExhausted { .. } => 5,
        TransportError::Wire { .. } => 4,
        TransportError::ConnectFailed { .. } => 3,
        TransportError::Timeout { .. } => 2,
        TransportError::Io { .. } => 1,
        TransportError::Disconnected { .. } => 0,
    }
}

/// Pick the most diagnostic error out of the per-party results.
pub(crate) fn select_error(errors: Vec<TransportError>) -> TransportError {
    errors
        .into_iter()
        .max_by_key(error_priority)
        .expect("select_error called with no errors")
}

/// Build one party's trace recorder per the config (trace flag + event cap).
pub(crate) fn make_recorder(config: &MpcConfig, id: usize) -> Option<PartyRecorder> {
    config.trace.then(|| {
        let rec = PartyRecorder::new(id, config.latency);
        match config.trace_event_cap {
            Some(cap) => rec.with_event_cap(cap),
            None => rec,
        }
    })
}

impl MpcEngine {
    pub fn new(config: MpcConfig) -> Self {
        config.validate();
        MpcEngine { config }
    }

    pub fn config(&self) -> &MpcConfig {
        &self.config
    }

    /// Run `program` at every party concurrently and collect outputs.
    ///
    /// The program must be SPMD-deterministic: every party performs the same
    /// sequence of communicating operations (branching only on public data).
    ///
    /// ```
    /// use sqm_field::{M61, PrimeField};
    /// use sqm_mpc::{MpcConfig, MpcEngine};
    /// use std::time::Duration;
    ///
    /// let engine = MpcEngine::new(MpcConfig::semi_honest(3).with_latency(Duration::ZERO));
    /// let run = engine.run::<M61, _, _>(|ctx| {
    ///     // Party 0 holds 6, party 1 holds 7; everyone learns 42.
    ///     let a = ctx.share_input(0, (ctx.id == 0).then(|| vec![M61::from_u64(6)]).as_deref(), 1);
    ///     let b = ctx.share_input(1, (ctx.id == 1).then(|| vec![M61::from_u64(7)]).as_deref(), 1);
    ///     let p = ctx.mul(&a, &b);
    ///     ctx.open(&p)[0]
    /// });
    /// assert!(run.outputs.iter().all(|v| v.to_canonical() == 42));
    /// ```
    pub fn run<F, T, P>(&self, program: P) -> MpcRun<T>
    where
        F: PrimeField,
        T: Send,
        P: Fn(&mut PartyCtx<F>) -> T + Sync,
    {
        self.try_run(program)
            .unwrap_or_else(|e| panic!("mpc transport failure: {e}"))
    }

    /// Like [`MpcEngine::run`], but a transport failure (dropped party,
    /// socket timeout, injected crash, ...) is returned as the typed
    /// [`TransportError`] naming the offending party and round instead of
    /// panicking. Non-transport panics inside `program` still propagate.
    pub fn try_run<F, T, P>(&self, program: P) -> Result<MpcRun<T>, TransportError>
    where
        F: PrimeField,
        T: Send,
        P: Fn(&mut PartyCtx<F>) -> T + Sync,
    {
        let endpoints = build_mesh::<F>(
            self.config.n_parties,
            &self.config.backend,
            self.config.faults.as_ref(),
        )?;
        self.try_run_on(endpoints, program).map(|(run, _)| run)
    }

    /// Like [`MpcEngine::try_run`], but over a caller-supplied mesh of party
    /// endpoints instead of building (and tearing down) a fresh one. On
    /// success the endpoints are handed back so the *next* run can reuse
    /// them — this is how a long-lived server amortizes meshing across many
    /// releases in one session. On error the endpoints are consumed: a
    /// transport failure leaves the mesh in an undefined round state, so the
    /// caller must re-mesh (via [`crate::net::build_mesh`]) before retrying.
    ///
    /// Party round counters continue across runs on a reused mesh; nothing
    /// in the protocol layer depends on absolute round numbers.
    pub fn try_run_on<F, T, P>(
        &self,
        endpoints: Vec<Box<dyn Transport<F>>>,
        program: P,
    ) -> Result<RunOnMesh<F, T>, TransportError>
    where
        F: PrimeField,
        T: Send,
        P: Fn(&mut PartyCtx<F>) -> T + Sync,
    {
        let n = self.config.n_parties;
        assert_eq!(
            endpoints.len(),
            n,
            "endpoint mesh size must match config.n_parties"
        );
        install_quiet_abort_hook();
        if let Some(pc) = &self.config.prof {
            prof::install(pc, self.config.seed);
        }
        let lagrange_all = lagrange_at_zero::<F>(&(0..n).collect::<Vec<_>>());
        if prof::is_active() {
            // One field inversion per Lagrange denominator.
            prof::record("engine;setup;field_inv", 1, n as u64);
        }
        let program = &program;

        // Bracket the run for live telemetry. The guard's Drop path covers
        // a party-thread panic unwinding past the join below: the run is
        // then recorded as failed and the flight recorder still dumps.
        let live_run = self
            .config
            .live
            .as_ref()
            .map(|lc| live::begin_run(lc, n, self.config.seed));

        type PartyResult<T, E> = (T, PartyStats, Option<sqm_obs::trace::PartyTrace>, E);
        type Endpoint<F> = Box<dyn Transport<F>>;
        let frame_mode = self.config.batching.frame_mode();
        let results: Vec<Result<PartyResult<T, Endpoint<F>>, TransportError>> =
            std::thread::scope(|s| {
                let handles: Vec<_> = endpoints
                    .into_iter()
                    .map(|mut endpoint| {
                        endpoint.set_frame_mode(frame_mode);
                        let id = endpoint.id();
                        let config = self.config.clone();
                        let lagrange = lagrange_all.clone();
                        s.spawn(move || {
                            let mut ctx = PartyCtx {
                                id,
                                n,
                                t: config.threshold,
                                rng: StdRng::seed_from_u64(
                                    config.seed
                                        ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(id as u64 + 1)),
                                ),
                                endpoint,
                                stats: PartyStats::default(),
                                recorder: make_recorder(&config, id),
                                lagrange_all: lagrange,
                                batching: config.batching,
                                phase: "default".to_string(),
                                phase_started: Instant::now(),
                                run_id: config.seed,
                                lamport: 0,
                                link_seq: vec![0; n],
                            };
                            // A transport failure aborts the program mid-round via
                            // a PartyAbort unwind; catch it here and surface the
                            // typed error. Returning (rather than unwinding past
                            // the closure) drops `ctx` and with it this party's
                            // endpoint, which unblocks any peer waiting on it.
                            match catch_unwind(AssertUnwindSafe(|| program(&mut ctx))) {
                                Ok(out) => {
                                    ctx.flush_phase();
                                    let PartyCtx {
                                        endpoint,
                                        stats,
                                        recorder,
                                        ..
                                    } = ctx;
                                    Ok((out, stats, recorder.map(PartyRecorder::finish), endpoint))
                                }
                                Err(payload) => match payload.downcast::<PartyAbort>() {
                                    Ok(abort) => Err(abort.0),
                                    Err(other) => resume_unwind(other),
                                },
                            }
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("party thread panicked"))
                    .collect()
            });

        let mut outputs = Vec::with_capacity(n);
        let mut stats = Vec::with_capacity(n);
        let mut party_traces = Vec::with_capacity(n);
        let mut mesh = Vec::with_capacity(n);
        let mut errors = Vec::new();
        for (party, result) in results.into_iter().enumerate() {
            match result {
                Ok((out, ps, pt, endpoint)) => {
                    if metrics::is_enabled() {
                        metrics::histogram_record("mpc.bytes_per_party", ps.total.bytes as f64);
                        // Last-run-wins per-party gauges: the traffic each
                        // party shipped, readable from a metrics snapshot
                        // without parsing the trace.
                        metrics::gauge_set(
                            &format!("mpc.party.{party}.bytes_sent"),
                            ps.total.bytes as f64,
                        );
                        metrics::gauge_set(
                            &format!("mpc.party.{party}.messages_sent"),
                            ps.total.messages as f64,
                        );
                    }
                    outputs.push(out);
                    stats.push(ps);
                    party_traces.extend(pt);
                    mesh.push(endpoint);
                }
                Err(e) => errors.push(e),
            }
        }
        if !errors.is_empty() {
            let err = select_error(errors);
            if let Some(guard) = live_run {
                guard.fail(live::RunError::new(
                    err.kind(),
                    Some(err.party()),
                    err.round(),
                ));
            }
            return Err(err);
        }
        if let Some(guard) = live_run {
            guard.finish();
        }
        let trace = (party_traces.len() == n)
            .then(|| Trace::from_parties(self.config.latency, party_traces));
        Ok((
            MpcRun {
                outputs,
                stats: merge(stats, self.config.latency),
                trace,
            },
            mesh,
        ))
    }
}

/// One party's shares of a Beaver triple `(a, b, c)` with `c = a * b`.
#[derive(Copy, Clone, Debug)]
pub struct BeaverTriple<F: PrimeField> {
    a: F,
    b: F,
    c: F,
}

/// One party's protocol context. A *share vector* is a plain `Vec<F>` whose
/// `k`-th entry is this party's Shamir share of the `k`-th secret.
pub struct PartyCtx<F: PrimeField> {
    /// This party's index in `0..n`.
    pub id: usize,
    /// Number of parties.
    pub n: usize,
    /// Sharing threshold.
    pub t: usize,
    rng: StdRng,
    endpoint: Box<dyn Transport<F>>,
    stats: PartyStats,
    recorder: Option<PartyRecorder>,
    lagrange_all: Vec<F>,
    batching: Batching,
    phase: String,
    phase_started: Instant,
    /// Causal stamping state (active only when tracing): run identifier
    /// (the engine seed), the party's Lamport clock, and one sequence
    /// counter per directed outgoing link.
    run_id: u64,
    lamport: u64,
    link_seq: Vec<u64>,
}

impl<F: PrimeField> PartyCtx<F> {
    /// Switch accounting to a named phase (e.g. `"dp_noise"`). Wall time and
    /// rounds accrued so far are attributed to the previous phase.
    pub fn set_phase(&mut self, name: &str) {
        self.flush_phase();
        self.phase = name.to_string();
        if let Some(rec) = &mut self.recorder {
            rec.set_phase(name);
        }
    }

    fn flush_phase(&mut self) {
        // One measurement feeds both the accounting and the trace, so a
        // merged trace reproduces RunStats::simulated_time() exactly.
        let elapsed = self.phase_started.elapsed();
        self.stats.record_wall(&self.phase, elapsed);
        if let Some(rec) = &mut self.recorder {
            rec.flush_phase(elapsed);
        }
        self.phase_started = Instant::now();
    }

    fn exchange(&mut self, outgoing: Vec<Vec<F>>) -> Vec<Vec<F>> {
        // Scoped round timer: when metrics are on, the wall time of every
        // synchronous exchange lands in the `mpc.round_wall_ns` histogram
        // (the per-round half of the virtual-clock model; the latency half
        // is `rounds * latency` by construction).
        let round_started = metrics::is_enabled().then(Instant::now);
        // Live telemetry (collector installed): capture the round index
        // before the exchange bumps it. Publishing happens after the
        // exchange and rides entirely outside `PartyStats` and the trace,
        // so accounting is bit-identical with telemetry on or off.
        let live_round = live::is_active().then(|| (Instant::now(), self.endpoint.round()));
        // Cost profiling (profiler installed): capture the round index
        // before the exchange bumps it. Like live telemetry, recording
        // happens after the exchange and rides entirely outside
        // `PartyStats` and the trace.
        let prof_round = prof::is_active().then(|| (Instant::now(), self.endpoint.round()));
        // Causal stamping (traced runs only): every real outgoing payload
        // carries this party's Lamport clock and a per-link sequence
        // number; the header travels out-of-band of the byte accounting.
        let stamping = self.recorder.is_some().then(|| {
            let lamport_send = self.lamport + 1;
            let round = self.endpoint.round();
            let mut sends = Vec::new();
            let headers: Vec<Option<TraceHeader>> = outgoing
                .iter()
                .enumerate()
                .map(|(j, payload)| {
                    if j == self.id || payload.is_empty() {
                        return None;
                    }
                    let link_seq = self.link_seq[j];
                    self.link_seq[j] += 1;
                    sends.push(MsgStamp {
                        peer: j,
                        link_seq,
                        lamport: lamport_send,
                        round,
                    });
                    Some(TraceHeader {
                        run_id: self.run_id,
                        party: self.id as u32,
                        round,
                        link_seq,
                        lamport: lamport_send,
                    })
                })
                .collect();
            (headers, sends, lamport_send, self.phase_started.elapsed())
        });
        let result = match &stamping {
            Some((headers, ..)) => self
                .endpoint
                .exchange_stamped(outgoing, Some(headers.clone())),
            None => self.endpoint.exchange(outgoing),
        };
        let outcome = match result {
            Ok(outcome) => outcome,
            // Unwind out of the SPMD program with the typed error; the
            // engine's catch_unwind turns this back into Err(TransportError).
            Err(e) => std::panic::panic_any(PartyAbort(e)),
        };
        let (messages, bytes) = (outcome.messages, outcome.bytes);
        self.stats
            .record_round(&self.phase, messages, bytes, outcome.elems);
        if let Some((t0, round)) = prof_round {
            let wall_ns = t0.elapsed().as_nanos() as u64;
            prof::record_round(
                &format!("engine;{};exchange", self.phase),
                messages,
                bytes,
                wall_ns,
            );
            prof::record_round(
                &format!("engine;{};round{round:04}", self.phase),
                messages,
                bytes,
                wall_ns,
            );
        }
        let events = self.endpoint.drain_events();
        if let Some((t0, round)) = live_round {
            // Injected fault events first: they carry the deterministic
            // per-link costs the stall watchdog uses to attribute a slow
            // round to the party that actually slept.
            for e in &events {
                if let Some(ev) = live::LiveEvent::fault(e.party, e.round, e.peer, &e.kind, e.value)
                {
                    live::publish(ev);
                }
            }
            live::publish(live::LiveEvent::round(
                self.id,
                round,
                &self.phase,
                t0.elapsed(),
                messages,
                bytes,
            ));
        }
        if let Some((_, sends, lamport_send, wall_send)) = stamping {
            let wall_recv = self.phase_started.elapsed();
            let recvs: Vec<MsgStamp> = outcome
                .headers
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != self.id)
                .filter_map(|(i, h)| {
                    h.map(|h| MsgStamp {
                        peer: i,
                        link_seq: h.link_seq,
                        lamport: h.lamport,
                        round: h.round,
                    })
                })
                .collect();
            let max_recv = recvs.iter().map(|s| s.lamport).max().unwrap_or(0);
            let lamport_recv = lamport_send.max(max_recv) + 1;
            self.lamport = lamport_recv;
            if let Some(rec) = &mut self.recorder {
                rec.record_causal_round(
                    wall_send,
                    wall_recv,
                    lamport_send,
                    lamport_recv,
                    sends,
                    recvs,
                );
            }
        }
        if let Some(rec) = &mut self.recorder {
            rec.record_round(messages, bytes);
            for event in events {
                rec.record_net_event(event);
            }
        }
        if let Some(t0) = round_started {
            metrics::histogram_record("mpc.round_wall_ns", t0.elapsed().as_nanos() as f64);
            metrics::counter_add("mpc.party_rounds", 1);
            metrics::counter_add("mpc.messages", messages);
            metrics::counter_add("mpc.bytes", bytes);
            metrics::histogram_record("mpc.messages_per_round", messages as f64);
        }
        outcome.incoming
    }

    /// The party's private randomness stream (share polynomials etc.).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// The worker-pool options of the round-batched mode, or `None` in the
    /// per-element reference mode. Callers scheduling their own wide local
    /// arithmetic (e.g. the circuit evaluator's gate layers) use this to
    /// match the engine's parallelism policy.
    pub fn batch_options(&self) -> Option<BatchOptions> {
        match self.batching {
            Batching::Off => None,
            Batching::PerRound(opts) => Some(opts),
        }
    }

    /// Share a whole vector: party-major shares of `values`. Dispatches on
    /// the batching mode — the reference mode keeps the original
    /// one-`share_secret`-per-value loop; the round-batched mode draws the
    /// identical RNG stream but evaluates the share polynomials through the
    /// width-parallel batch kernel. Identical output by construction.
    fn share_vector(&mut self, values: &[F]) -> Vec<Vec<F>> {
        match self.batching {
            Batching::Off => {
                let mut per_party: Vec<Vec<F>> = vec![Vec::with_capacity(values.len()); self.n];
                for &v in values {
                    let shares = share_secret(&mut self.rng, v, self.t, self.n);
                    for (j, s) in shares.into_iter().enumerate() {
                        per_party[j].push(s);
                    }
                }
                per_party
            }
            Batching::PerRound(opts) => share_secrets_batch(
                &mut self.rng,
                values,
                self.t,
                self.n,
                opts.workers,
                opts.min_parallel_width,
            ),
        }
    }

    /// Lagrange recombination `out[k] = sum_i lambda_i * incoming[i][k]`,
    /// split across the worker pool when the batch is wide and the
    /// round-batched mode is on. The per-element accumulation order over
    /// `i` is unchanged by the chunking, so both paths are bit-identical.
    fn recombine(&self, incoming: &[Vec<F>], len: usize, what: &str) -> Vec<F> {
        for (i, inc) in incoming.iter().enumerate() {
            assert_eq!(inc.len(), len, "{what}: party {i} sent wrong share count");
        }
        let mut out = vec![F::ZERO; len];
        // Capture only the weight table, not `self`: the endpoint behind
        // `self` is deliberately not shared with the worker threads.
        let lagrange_all = &self.lagrange_all;
        let accumulate = |out: &mut [F], offset: usize| {
            for (i, inc) in incoming.iter().enumerate() {
                let li = lagrange_all[i];
                for (o, &s) in out.iter_mut().zip(&inc[offset..]) {
                    *o += li * s;
                }
            }
        };
        match self.batching {
            Batching::PerRound(opts) if opts.parallel(len) => {
                let chunk = len.div_ceil(opts.workers);
                std::thread::scope(|s| {
                    let accumulate = &accumulate;
                    for (ci, slice) in out.chunks_mut(chunk).enumerate() {
                        s.spawn(move || accumulate(slice, ci * chunk));
                    }
                });
            }
            _ => accumulate(&mut out, 0),
        }
        out
    }

    // ----- input sharing ---------------------------------------------------

    /// Share a vector of secrets owned by `owner`. The owner passes
    /// `Some(values)`; everyone else passes `None` and `len`. One round.
    pub fn share_input(&mut self, owner: usize, values: Option<&[F]>, len: usize) -> Vec<F> {
        assert!(owner < self.n, "owner {owner} out of range");
        let mut outgoing: Vec<Vec<F>> = vec![Vec::new(); self.n];
        if self.id == owner {
            let values = values.expect("owner must supply input values");
            assert_eq!(
                values.len(),
                len,
                "owner's values do not match the declared length"
            );
            outgoing = self.share_vector(values);
        } else {
            assert!(
                values.is_none(),
                "non-owner party {} supplied values",
                self.id
            );
        }
        let incoming = self.exchange(outgoing);
        let mine = incoming[owner].clone();
        assert_eq!(mine.len(), len, "owner sent wrong share count");
        mine
    }

    /// Every party simultaneously shares its own equal-length vector.
    /// Returns `contributions[i]` = my shares of party `i`'s vector.
    /// One round — this is how the `n` local Skellam noise vectors are
    /// injected with a single exchange.
    pub fn share_all(&mut self, my_values: &[F]) -> Vec<Vec<F>> {
        let expected = vec![my_values.len(); self.n];
        self.share_all_uneven(my_values, &expected)
    }

    /// Like [`Self::share_all`] but each party may contribute a different
    /// (publicly known) number of secrets; `expected[i]` is party `i`'s
    /// contribution length. One round.
    pub fn share_all_uneven(&mut self, my_values: &[F], expected: &[usize]) -> Vec<Vec<F>> {
        assert_eq!(expected.len(), self.n, "need one expected length per party");
        assert_eq!(
            my_values.len(),
            expected[self.id],
            "party {}: declared length mismatch",
            self.id
        );
        let per_party = self.share_vector(my_values);
        let incoming = self.exchange(per_party);
        for (i, inc) in incoming.iter().enumerate() {
            assert_eq!(
                inc.len(),
                expected[i],
                "party {i} contributed a wrong-length vector"
            );
        }
        incoming
    }

    // ----- linear operations (local, no communication) ---------------------

    /// `[a] + [b]` element-wise.
    pub fn add(&self, a: &[F], b: &[F]) -> Vec<F> {
        assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(&x, &y)| x + y).collect()
    }

    /// `[a] - [b]` element-wise.
    pub fn sub(&self, a: &[F], b: &[F]) -> Vec<F> {
        assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(&x, &y)| x - y).collect()
    }

    /// Multiply shares by a public constant.
    pub fn scale_public(&self, a: &[F], c: F) -> Vec<F> {
        a.iter().map(|&x| x * c).collect()
    }

    /// Add a public constant to each shared secret. Every party adds `c`
    /// to its share (shifts the polynomial's constant term).
    pub fn add_public(&self, a: &[F], c: F) -> Vec<F> {
        a.iter().map(|&x| x + c).collect()
    }

    /// Sum a share vector into a single share of the sum of the secrets.
    pub fn sum(&self, a: &[F]) -> F {
        a.iter().fold(F::ZERO, |acc, &x| acc + x)
    }

    // ----- multiplication (one round per batch) -----------------------------

    /// Degree reduction (GRR): convert degree-`2t` shares into fresh
    /// degree-`t` shares of the same secrets. One round, batched.
    pub fn reduce_degree(&mut self, d: &[F]) -> Vec<F> {
        let len = d.len();
        if metrics::is_enabled() {
            metrics::counter_add("mpc.degree_reductions", 1);
            metrics::counter_add("mpc.reduced_elems", len as u64);
            metrics::histogram_record("mpc.degree_reduction_batch", len as f64);
        }
        if prof::is_active() {
            prof::record(
                &format!("engine;{};reduce_degree", self.phase),
                1,
                len as u64,
            );
            // Bulk field multiplications underneath: re-sharing evaluates a
            // degree-t polynomial at n points (t muls each, Horner) and
            // recombination applies n Lagrange weights per element.
            prof::record(
                &format!("engine;{};reduce_degree;field_mul", self.phase),
                1,
                (len * self.n * (self.t + 1)) as u64,
            );
        }
        // Re-share each local value with a fresh degree-t polynomial.
        let per_party = self.share_vector(d);
        let incoming = self.exchange(per_party);
        // New share = sum_i lambda_i * (party i's re-share of its value).
        self.recombine(&incoming, len, "degree reduction")
    }

    /// `[a] * [b]` element-wise: local products followed by one batched
    /// degree reduction.
    pub fn mul(&mut self, a: &[F], b: &[F]) -> Vec<F> {
        assert_eq!(a.len(), b.len());
        let local: Vec<F> = a.iter().zip(b).map(|(&x, &y)| x * y).collect();
        self.reduce_degree(&local)
    }

    /// Inner product `<[a], [b]>` with a *single* degree reduction: the local
    /// products are summed while still at degree `2t` (addition is free at
    /// any degree), so communication is one field element per party pair
    /// regardless of the vector length. This is the trick that makes
    /// covariance computation communication-cheap.
    pub fn inner_product(&mut self, a: &[F], b: &[F]) -> F {
        assert_eq!(a.len(), b.len());
        let local: F = a
            .iter()
            .zip(b)
            .map(|(&x, &y)| x * y)
            .fold(F::ZERO, |acc, v| acc + v);
        self.reduce_degree(&[local])[0]
    }

    /// Batched inner products: `out[k] = <a[k], b[k]>`, one round total.
    pub fn inner_products(&mut self, pairs: &[(&[F], &[F])]) -> Vec<F> {
        let locals: Vec<F> = pairs
            .iter()
            .map(|(a, b)| {
                assert_eq!(a.len(), b.len());
                a.iter()
                    .zip(b.iter())
                    .map(|(&x, &y)| x * y)
                    .fold(F::ZERO, |acc, v| acc + v)
            })
            .collect();
        self.reduce_degree(&locals)
    }

    // ----- Beaver-triple multiplication (preprocessing / online split) ------

    /// Generate `count` Beaver triples `([a], [b], [c = a*b])` in a
    /// preprocessing phase (two rounds: one simultaneous random-sharing
    /// exchange, one GRR reduction). The online multiplication then costs a
    /// single *opening* round — the classic preprocessing/online trade-off,
    /// kept as an alternative to direct GRR multiplication.
    pub fn generate_triples(&mut self, count: usize) -> Vec<BeaverTriple<F>> {
        // Every party contributes random summands for a and b; the sums are
        // uniformly random and unknown to any coalition of <= t parties.
        let my_randomness: Vec<F> = (0..2 * count).map(|_| F::random(&mut self.rng)).collect();
        let contributions = self.share_all(&my_randomness);
        let mut a = vec![F::ZERO; count];
        let mut b = vec![F::ZERO; count];
        for contrib in contributions {
            for k in 0..count {
                a[k] += contrib[k];
                b[k] += contrib[count + k];
            }
        }
        let c = self.mul(&a, &b);
        a.into_iter()
            .zip(b)
            .zip(c)
            .map(|((a, b), c)| BeaverTriple { a, b, c })
            .collect()
    }

    /// Multiply `[x] * [y]` element-wise using pre-generated triples: open
    /// `d = x - a` and `e = y - b` (one batched round) and assemble
    /// `[z] = [c] + d[b] + e[a] + de`.
    pub fn mul_beaver(&mut self, x: &[F], y: &[F], triples: &[BeaverTriple<F>]) -> Vec<F> {
        assert_eq!(x.len(), y.len(), "mul_beaver: length mismatch");
        assert!(
            triples.len() >= x.len(),
            "mul_beaver: need {} triples, have {}",
            x.len(),
            triples.len()
        );
        let mut masked = Vec::with_capacity(2 * x.len());
        for ((&xi, &yi), t) in x.iter().zip(y).zip(triples) {
            masked.push(xi - t.a);
            masked.push(yi - t.b);
        }
        let opened = self.open(&masked);
        x.iter()
            .zip(triples)
            .enumerate()
            .map(|(k, (_, t))| {
                let d = opened[2 * k];
                let e = opened[2 * k + 1];
                t.c + t.b * d + t.a * e + d * e
            })
            .collect()
    }

    // ----- opening ----------------------------------------------------------

    /// Open shared secrets to all parties: broadcast shares, reconstruct
    /// from all `n` evaluation points. One round.
    pub fn open(&mut self, shares: &[F]) -> Vec<F> {
        if prof::is_active() {
            // Reconstruction applies n Lagrange weights per opened element.
            prof::record(
                &format!("engine;{};open;field_mul", self.phase),
                1,
                (shares.len() * self.n) as u64,
            );
        }
        let incoming = self.exchange(vec![shares.to_vec(); self.n]);
        self.recombine(&incoming, shares.len(), "open")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqm_field::{PrimeField, M61};

    fn engine(n: usize) -> MpcEngine {
        MpcEngine::new(MpcConfig::semi_honest(n).with_latency(Duration::ZERO))
    }

    #[test]
    fn share_and_open_roundtrip() {
        let run = engine(4).run::<M61, _, _>(|ctx| {
            let secrets: Vec<M61> = vec![M61::from_i128(-5), M61::from_u64(42)];
            let shares = ctx.share_input(0, (ctx.id == 0).then_some(&secrets), 2);
            ctx.open(&shares)
        });
        for out in run.outputs {
            assert_eq!(out[0].to_centered_i128(), -5);
            assert_eq!(out[1].to_centered_i128(), 42);
        }
        assert_eq!(run.stats.total.rounds, 2); // share + open
    }

    #[test]
    fn linear_ops_are_free() {
        let run = engine(3).run::<M61, _, _>(|ctx| {
            let a = ctx.share_input(
                0,
                (ctx.id == 0).then(|| vec![M61::from_u64(10)]).as_deref(),
                1,
            );
            let b = ctx.share_input(
                1,
                (ctx.id == 1).then(|| vec![M61::from_u64(4)]).as_deref(),
                1,
            );
            let c = ctx.add(&a, &b);
            let d = ctx.scale_public(&c, M61::from_u64(3));
            let e = ctx.add_public(&d, M61::from_u64(1));
            ctx.open(&e)
        });
        for out in run.outputs {
            assert_eq!(out[0].to_canonical(), (10 + 4) * 3 + 1);
        }
        assert_eq!(run.stats.total.rounds, 3); // two shares + open; linear ops free
    }

    #[test]
    fn multiplication_with_degree_reduction() {
        for n in [3, 4, 5, 7] {
            let run = engine(n).run::<M61, _, _>(|ctx| {
                let a = ctx.share_input(
                    0,
                    (ctx.id == 0)
                        .then(|| vec![M61::from_i128(-7), M61::from_u64(3)])
                        .as_deref(),
                    2,
                );
                let b = ctx.share_input(
                    1,
                    (ctx.id == 1)
                        .then(|| vec![M61::from_u64(6), M61::from_i128(-9)])
                        .as_deref(),
                    2,
                );
                let p = ctx.mul(&a, &b);
                ctx.open(&p)
            });
            for out in run.outputs {
                assert_eq!(out[0].to_centered_i128(), -42, "n={n}");
                assert_eq!(out[1].to_centered_i128(), -27, "n={n}");
            }
        }
    }

    #[test]
    fn inner_product_single_round() {
        let run = engine(4).run::<M61, _, _>(|ctx| {
            let a = ctx.share_input(
                0,
                (ctx.id == 0)
                    .then(|| (1..=100u64).map(M61::from_u64).collect::<Vec<_>>())
                    .as_deref(),
                100,
            );
            let b = ctx.share_input(
                1,
                (ctx.id == 1)
                    .then(|| vec![M61::from_u64(2); 100])
                    .as_deref(),
                100,
            );
            let ip = ctx.inner_product(&a, &b);
            ctx.open(&[ip])
        });
        // 2 * sum(1..=100) = 10100.
        for out in run.outputs {
            assert_eq!(out[0].to_canonical(), 10_100);
        }
        // share a, share b, reduce, open = 4 rounds for 100-element vectors.
        assert_eq!(run.stats.total.rounds, 4);
    }

    #[test]
    fn repeated_multiplication_chains() {
        // x^4 via two squarings on shares.
        let run = engine(5).run::<M61, _, _>(|ctx| {
            let x = ctx.share_input(
                2,
                (ctx.id == 2).then(|| vec![M61::from_u64(3)]).as_deref(),
                1,
            );
            let x2 = ctx.mul(&x, &x);
            let x4 = ctx.mul(&x2, &x2);
            ctx.open(&x4)
        });
        for out in run.outputs {
            assert_eq!(out[0].to_canonical(), 81);
        }
    }

    #[test]
    fn share_all_aggregates_noise_in_one_round() {
        let run = engine(4).run::<M61, _, _>(|ctx| {
            // Every party contributes a vector [id, 2*id].
            let mine = vec![
                M61::from_u64(ctx.id as u64),
                M61::from_u64(2 * ctx.id as u64),
            ];
            let contributions = ctx.share_all(&mine);
            // Sum all contributions (a sharing of the element-wise total).
            let mut acc = vec![M61::ZERO; 2];
            for c in contributions {
                acc = ctx.add(&acc, &c);
            }
            ctx.open(&acc)
        });
        for out in run.outputs {
            assert_eq!(out[0].to_canonical(), 1 + 2 + 3);
            assert_eq!(out[1].to_canonical(), 2 * (1 + 2 + 3));
        }
        assert_eq!(run.stats.total.rounds, 2); // share_all + open
    }

    #[test]
    fn batched_inner_products() {
        let run = engine(3).run::<M61, _, _>(|ctx| {
            let a = ctx.share_input(
                0,
                (ctx.id == 0)
                    .then(|| vec![M61::from_u64(1), M61::from_u64(2)])
                    .as_deref(),
                2,
            );
            let b = ctx.share_input(
                1,
                (ctx.id == 1)
                    .then(|| vec![M61::from_u64(10), M61::from_u64(20)])
                    .as_deref(),
                2,
            );
            let ips = ctx.inner_products(&[(&a[..], &b[..]), (&a[..1], &a[..1])]);
            ctx.open(&ips)
        });
        for out in run.outputs {
            assert_eq!(out[0].to_canonical(), 50); // 1*10 + 2*20
            assert_eq!(out[1].to_canonical(), 1); // 1*1
        }
    }

    #[test]
    fn outputs_consistent_across_parties() {
        let run = engine(6).run::<M61, _, _>(|ctx| {
            let x = ctx.share_input(
                0,
                (ctx.id == 0).then(|| vec![M61::from_u64(9)]).as_deref(),
                1,
            );
            let y = ctx.mul(&x, &x);
            ctx.open(&y)
        });
        let first = &run.outputs[0];
        for out in &run.outputs {
            assert_eq!(out, first);
        }
    }

    #[test]
    fn beaver_triples_are_valid() {
        let run = engine(4).run::<M61, _, _>(|ctx| {
            let triples = ctx.generate_triples(8);
            // Open each (a, b, c) and check c = a*b.
            let flat: Vec<M61> = triples.iter().flat_map(|t| [t.a, t.b, t.c]).collect();
            ctx.open(&flat)
        });
        for out in run.outputs {
            for chunk in out.chunks(3) {
                assert_eq!(chunk[0] * chunk[1], chunk[2]);
            }
        }
    }

    #[test]
    fn beaver_multiplication_matches_grr() {
        let run = engine(5).run::<M61, _, _>(|ctx| {
            let x = ctx.share_input(
                0,
                (ctx.id == 0)
                    .then(|| vec![M61::from_i128(-7), M61::from_u64(11)])
                    .as_deref(),
                2,
            );
            let y = ctx.share_input(
                1,
                (ctx.id == 1)
                    .then(|| vec![M61::from_u64(6), M61::from_i128(-2)])
                    .as_deref(),
                2,
            );
            let triples = ctx.generate_triples(2);
            let z_beaver = ctx.mul_beaver(&x, &y, &triples);
            let z_grr = ctx.mul(&x, &y);
            let mut both = z_beaver;
            both.extend(z_grr);
            ctx.open(&both)
        });
        for out in run.outputs {
            assert_eq!(out[0].to_centered_i128(), -42);
            assert_eq!(out[1].to_centered_i128(), -22);
            assert_eq!(out[0], out[2]);
            assert_eq!(out[1], out[3]);
        }
    }

    #[test]
    fn beaver_online_is_one_round() {
        // After preprocessing, a batch multiply costs exactly one round.
        let eng = engine(3);
        let run = eng.run::<M61, _, _>(|ctx| {
            let x = ctx.share_input(
                0,
                (ctx.id == 0).then(|| vec![M61::from_u64(3); 10]).as_deref(),
                10,
            );
            let y = ctx.share_input(
                1,
                (ctx.id == 1).then(|| vec![M61::from_u64(4); 10]).as_deref(),
                10,
            );
            let triples = ctx.generate_triples(10);
            ctx.set_phase("online");
            let z = ctx.mul_beaver(&x, &y, &triples);
            ctx.open(&z)
        });
        assert_eq!(run.stats.phases["online"].rounds, 2); // mask-open + final open
        for out in run.outputs {
            assert!(out.iter().all(|v| v.to_canonical() == 12));
        }
    }

    #[test]
    #[should_panic(expected = "party thread panicked")]
    fn beaver_insufficient_triples_panics() {
        engine(3).run::<M61, _, _>(|ctx| {
            let x = ctx.share_input(0, (ctx.id == 0).then(|| vec![M61::ONE; 3]).as_deref(), 3);
            let triples = ctx.generate_triples(1);
            let x2 = x.clone();
            ctx.mul_beaver(&x, &x2, &triples)
        });
    }

    #[test]
    fn stats_track_phases() {
        let run = engine(3).run::<M61, _, _>(|ctx| {
            ctx.set_phase("input");
            let x = ctx.share_input(0, (ctx.id == 0).then(|| vec![M61::ONE]).as_deref(), 1);
            ctx.set_phase("dp_noise");
            let z = ctx.share_all(&[M61::from_u64(ctx.id as u64)]);
            let mut acc = x;
            for c in z {
                acc = ctx.add(&acc, &c);
            }
            ctx.set_phase("open");
            ctx.open(&acc)
        });
        assert_eq!(run.stats.phases["input"].rounds, 1);
        assert_eq!(run.stats.phases["dp_noise"].rounds, 1);
        assert_eq!(run.stats.phases["open"].rounds, 1);
        assert_eq!(run.stats.total.rounds, 3);
        // 1 + 0 + 1 + 2 = 4 in total; value sanity:
        for out in run.outputs {
            assert_eq!(out[0].to_canonical(), 1 + 1 + 2);
        }
    }

    #[test]
    fn latency_accounting() {
        let cfg = MpcConfig::semi_honest(3).with_latency(Duration::from_millis(100));
        let run = MpcEngine::new(cfg).run::<M61, _, _>(|ctx| {
            let x = ctx.share_input(0, (ctx.id == 0).then(|| vec![M61::ONE]).as_deref(), 1);
            ctx.open(&x)
        });
        // 2 rounds * 100 ms <= simulated <= that plus some wall time.
        assert!(run.stats.simulated_time() >= Duration::from_millis(200));
        assert!(run.stats.simulated_time() < Duration::from_millis(300));
    }

    #[test]
    #[should_panic(expected = "2t < n")]
    fn rejects_bad_threshold() {
        MpcEngine::new(MpcConfig {
            n_parties: 4,
            threshold: 2,
            latency: Duration::ZERO,
            seed: 0,
            trace: false,
            trace_event_cap: None,
            backend: NetBackend::InProcess,
            faults: None,
            live: None,
            prof: None,
            batching: Batching::default(),
        });
    }

    #[test]
    fn tcp_backend_matches_in_process_exactly() {
        let program = |ctx: &mut PartyCtx<M61>| {
            let a = ctx.share_input(
                0,
                (ctx.id == 0)
                    .then(|| vec![M61::from_i128(-3), M61::from_u64(12)])
                    .as_deref(),
                2,
            );
            let b = ctx.share_input(
                1,
                (ctx.id == 1)
                    .then(|| vec![M61::from_u64(5), M61::from_i128(-2)])
                    .as_deref(),
                2,
            );
            let p = ctx.mul(&a, &b);
            ctx.open(&p)
        };
        let base = MpcConfig::semi_honest(4).with_latency(Duration::ZERO);
        let inproc = MpcEngine::new(base.clone()).run::<M61, _, _>(program);
        let tcp = MpcEngine::new(base.with_backend(NetBackend::tcp())).run::<M61, _, _>(program);
        assert_eq!(inproc.outputs, tcp.outputs);
        assert_eq!(inproc.stats.total.rounds, tcp.stats.total.rounds);
        assert_eq!(inproc.stats.total.messages, tcp.stats.total.messages);
        assert_eq!(inproc.stats.total.bytes, tcp.stats.total.bytes);
    }

    #[test]
    fn try_run_on_reuses_a_mesh_across_runs_and_matches_fresh_meshes() {
        let program = |ctx: &mut PartyCtx<M61>| {
            let a = ctx.share_input(
                0,
                (ctx.id == 0).then(|| vec![M61::from_u64(6)]).as_deref(),
                1,
            );
            let b = ctx.share_input(
                1,
                (ctx.id == 1).then(|| vec![M61::from_u64(7)]).as_deref(),
                1,
            );
            let p = ctx.mul(&a, &b);
            ctx.open(&p)[0]
        };
        let cfg = MpcConfig::semi_honest(3).with_latency(Duration::ZERO);
        let engine = MpcEngine::new(cfg.clone());
        let mesh = build_mesh::<M61>(3, &cfg.backend, None).unwrap();
        let (first, mesh) = engine.try_run_on(mesh, program).unwrap();
        // Second run on the SAME mesh: round counters continue, outputs and
        // per-run accounting match a fresh-mesh run exactly.
        let (second, _mesh) = engine.try_run_on(mesh, program).unwrap();
        let fresh = engine.try_run::<M61, _, _>(program).unwrap();
        for run in [&first, &second, &fresh] {
            assert!(run.outputs.iter().all(|v| v.to_canonical() == 42));
        }
        assert_eq!(first.stats.total.rounds, second.stats.total.rounds);
        assert_eq!(second.stats.total.messages, fresh.stats.total.messages);
        assert_eq!(second.stats.total.bytes, fresh.stats.total.bytes);
    }

    #[test]
    fn try_run_surfaces_injected_crash_as_typed_error() {
        let cfg = MpcConfig::semi_honest(4)
            .with_latency(Duration::ZERO)
            .with_faults(Some(sqm_net::FaultSpec::seeded(1).with_crash(2, 1)));
        let err = MpcEngine::new(cfg)
            .try_run::<M61, _, _>(|ctx| {
                let x = ctx.share_input(0, (ctx.id == 0).then(|| vec![M61::ONE]).as_deref(), 1);
                let y = ctx.mul(&x, &x);
                ctx.open(&y)
            })
            .unwrap_err();
        assert_eq!(err, TransportError::Crashed { party: 2, round: 1 });
        assert_eq!(err.party(), 2);
        assert_eq!(err.round(), Some(1));
    }

    #[test]
    #[should_panic(expected = "mpc transport failure")]
    fn run_panics_with_the_transport_diagnosis() {
        let cfg = MpcConfig::semi_honest(3)
            .with_latency(Duration::ZERO)
            .with_faults(Some(sqm_net::FaultSpec::seeded(2).with_crash(0, 0)));
        MpcEngine::new(cfg).run::<M61, _, _>(|ctx| {
            let x = ctx.share_input(1, (ctx.id == 1).then(|| vec![M61::ONE]).as_deref(), 1);
            ctx.open(&x)
        });
    }

    #[test]
    fn seeded_faults_leave_protocol_output_identical() {
        // Delays and drops perturb timing, never payloads: a faulted run
        // must produce exactly the fault-free outputs, and two runs with the
        // same fault seed must behave identically.
        let program = |ctx: &mut PartyCtx<M61>| {
            let x = ctx.share_input(
                0,
                (ctx.id == 0).then(|| vec![M61::from_u64(9); 4]).as_deref(),
                4,
            );
            let y = ctx.mul(&x, &x);
            ctx.open(&y)
        };
        let clean = MpcEngine::new(MpcConfig::semi_honest(3).with_latency(Duration::ZERO))
            .run::<M61, _, _>(program);
        let faults = sqm_net::FaultSpec::seeded(77)
            .with_delay(Duration::ZERO, Duration::from_micros(300))
            .with_drop(0.2)
            .with_retransmit(Duration::from_micros(100), 32);
        let faulted = || {
            MpcEngine::new(
                MpcConfig::semi_honest(3)
                    .with_latency(Duration::ZERO)
                    .with_faults(Some(faults.clone())),
            )
            .run::<M61, _, _>(program)
        };
        let a = faulted();
        let b = faulted();
        assert_eq!(a.outputs, clean.outputs);
        assert_eq!(b.outputs, clean.outputs);
        assert_eq!(a.stats.total.messages, clean.stats.total.messages);
        assert_eq!(a.stats.total.bytes, clean.stats.total.bytes);
    }

    #[test]
    fn trace_reproduces_simulated_time_exactly() {
        let cfg = MpcConfig::semi_honest(4)
            .with_latency(Duration::from_millis(100))
            .with_trace(true);
        let run = MpcEngine::new(cfg).run::<M61, _, _>(|ctx| {
            ctx.set_phase("input");
            let x = ctx.share_input(
                0,
                (ctx.id == 0).then(|| vec![M61::from_u64(5); 3]).as_deref(),
                3,
            );
            ctx.set_phase("mul");
            let y = ctx.mul(&x, &x);
            ctx.set_phase("open");
            ctx.open(&y)
        });
        let trace = run.trace.expect("trace requested");
        let summary = trace.summary();
        // The recorder was fed the same Instant measurements as the stats,
        // so the totals must agree to the nanosecond — not approximately.
        assert_eq!(summary.total_simulated(), run.stats.simulated_time());
        assert_eq!(summary.total.rounds, run.stats.total.rounds);
        assert_eq!(summary.total.messages, run.stats.total.messages);
        assert_eq!(summary.total.bytes, run.stats.total.bytes);
        for (name, p) in &run.stats.phases {
            let row = summary
                .phases
                .iter()
                .find(|r| &r.name == name)
                .unwrap_or_else(|| panic!("phase {name} missing from trace summary"));
            assert_eq!(row.rounds, p.rounds, "{name}");
            assert_eq!(row.messages, p.messages, "{name}");
            assert_eq!(row.bytes, p.bytes, "{name}");
            assert_eq!(row.simulated, p.simulated_time(run.stats.latency), "{name}");
        }
        // Each party recorded each of its rounds.
        assert_eq!(
            trace.parties.iter().map(|p| p.rounds.len()).sum::<usize>() as u64,
            4 * run.stats.total.rounds
        );
    }

    #[test]
    fn capped_trace_still_reproduces_simulated_time_exactly() {
        // A cap of 2 detail events per party drops most spans/rounds, but
        // the per-phase totals keep the merged summary exact.
        let cfg = MpcConfig::semi_honest(4)
            .with_latency(Duration::from_millis(50))
            .with_trace(true)
            .with_trace_event_cap(2);
        let run = MpcEngine::new(cfg).run::<M61, _, _>(|ctx| {
            ctx.set_phase("input");
            let x = ctx.share_input(
                0,
                (ctx.id == 0).then(|| vec![M61::from_u64(5); 3]).as_deref(),
                3,
            );
            ctx.set_phase("mul");
            let y = ctx.mul(&x, &x);
            let y = ctx.mul(&y, &x);
            ctx.set_phase("open");
            ctx.open(&y)
        });
        let trace = run.trace.expect("trace requested");
        assert!(trace.dropped_events() > 0, "cap of 2 must drop detail");
        let summary = trace.summary();
        assert_eq!(summary.total_simulated(), run.stats.simulated_time());
        assert_eq!(summary.total.rounds, run.stats.total.rounds);
        assert_eq!(summary.total.messages, run.stats.total.messages);
        assert_eq!(summary.total.bytes, run.stats.total.bytes);
        for pt in &trace.parties {
            assert!(pt.spans.len() + pt.rounds.len() + pt.net_events.len() <= 2);
        }
    }

    #[test]
    fn causal_critical_path_matches_simulated_time_exactly() {
        // The message DAG reconstructed from the causal stamps must yield a
        // critical path whose total is bit-exact with the virtual clock.
        let cfg = MpcConfig::semi_honest(4)
            .with_latency(Duration::from_millis(100))
            .with_trace(true);
        let run = MpcEngine::new(cfg).run::<M61, _, _>(|ctx| {
            ctx.set_phase("input");
            let x = ctx.share_input(
                0,
                (ctx.id == 0).then(|| vec![M61::from_u64(5); 3]).as_deref(),
                3,
            );
            ctx.set_phase("mul");
            let y = ctx.mul(&x, &x);
            ctx.set_phase("open");
            ctx.open(&y)
        });
        let trace = run.trace.expect("trace requested");
        let dag = sqm_obs::MessageDag::build(&trace);
        assert!(
            dag.fully_matched(),
            "every send must match exactly one recv"
        );
        assert_eq!(dag.lamport_violations(), 0);
        assert_eq!(dag.edges().len() as u64, run.stats.total.messages);
        let cp = dag.critical_path();
        assert_eq!(cp.total, run.stats.simulated_time());
        // Per-party breakdowns partition each party's timeline.
        for p in &cp.parties {
            assert_eq!(p.idle + p.compute, p.total);
        }
    }

    #[test]
    fn causal_stamps_cross_the_tcp_backend() {
        // Headers travel inside the TCP frames: the reconstructed DAG over
        // loopback sockets must match every send to a recv, with the same
        // message count and zero Lamport violations as in-process.
        let cfg = MpcConfig::semi_honest(3)
            .with_latency(Duration::ZERO)
            .with_trace(true)
            .with_backend(NetBackend::tcp());
        let run = MpcEngine::new(cfg).run::<M61, _, _>(|ctx| {
            let x = ctx.share_input(
                0,
                (ctx.id == 0).then(|| vec![M61::from_u64(7)]).as_deref(),
                1,
            );
            let y = ctx.mul(&x, &x);
            ctx.open(&y)
        });
        let trace = run.trace.expect("trace requested");
        let dag = sqm_obs::MessageDag::build(&trace);
        assert!(dag.fully_matched());
        assert_eq!(dag.lamport_violations(), 0);
        assert_eq!(dag.edges().len() as u64, run.stats.total.messages);
    }

    /// A traced run for the degraded-DAG tests below.
    fn traced_run() -> MpcRun<Vec<M61>> {
        let cfg = MpcConfig::semi_honest(3)
            .with_latency(Duration::ZERO)
            .with_trace(true);
        MpcEngine::new(cfg).run::<M61, _, _>(|ctx| {
            let x = ctx.share_input(
                0,
                (ctx.id == 0).then(|| vec![M61::from_u64(5); 3]).as_deref(),
                3,
            );
            let y = ctx.mul(&x, &x);
            let y = ctx.mul(&y, &x);
            ctx.open(&y)
        })
    }

    #[test]
    fn causal_dag_survives_seeded_drop_faults_fully_matched() {
        // Drops happen below the protocol layer: every retransmitted
        // message still crosses the causal boundary exactly once, so the
        // reconstructed DAG must be as clean as a fault-free run's.
        let cfg = MpcConfig::semi_honest(3)
            .with_latency(Duration::ZERO)
            .with_trace(true)
            .with_faults(Some(
                sqm_net::FaultSpec::seeded(31)
                    .with_delay(Duration::ZERO, Duration::from_micros(200))
                    .with_drop(0.2)
                    .with_retransmit(Duration::from_micros(100), 32),
            ));
        let run = MpcEngine::new(cfg).run::<M61, _, _>(|ctx| {
            let x = ctx.share_input(
                0,
                (ctx.id == 0).then(|| vec![M61::from_u64(9); 4]).as_deref(),
                4,
            );
            let y = ctx.mul(&x, &x);
            ctx.open(&y)
        });
        let trace = run.trace.expect("trace requested");
        let dag = sqm_obs::MessageDag::build(&trace);
        assert!(
            dag.fully_matched(),
            "retransmits must not duplicate or lose causal stamps"
        );
        assert_eq!(dag.lamport_violations(), 0);
        assert_eq!(dag.edges().len() as u64, run.stats.total.messages);
    }

    #[test]
    fn causal_unmatched_counts_are_exact_when_a_party_record_is_truncated() {
        // Simulate a party crashing before flushing its trace: drop the
        // tail of party 0's causal record from a real run. Every send
        // stamp removed leaves one peer recv unmatched, and every recv
        // stamp removed leaves one peer send unmatched — exactly.
        let run = traced_run();
        let trace = run.trace.expect("trace requested");
        let clean = sqm_obs::MessageDag::build(&trace);
        assert!(clean.fully_matched());

        let mut parties = trace.parties.clone();
        let rounds = parties[0].causal.len();
        assert!(rounds >= 2, "need a multi-round record to truncate");
        let keep = rounds / 2;
        let removed: Vec<_> = parties[0].causal.drain(keep..).collect();
        let removed_sends: usize = removed.iter().map(|r| r.sends.len()).sum();
        let removed_recvs: usize = removed.iter().map(|r| r.recvs.len()).sum();
        assert!(removed_sends > 0 && removed_recvs > 0);

        let degraded = sqm_obs::Trace::from_parties(trace.latency, parties);
        let dag = sqm_obs::MessageDag::build(&degraded);
        assert!(!dag.fully_matched());
        assert_eq!(
            dag.unmatched_recvs(),
            removed_sends,
            "each lost send stamp leaves exactly one recv unmatched"
        );
        assert_eq!(
            dag.unmatched_sends(),
            removed_recvs,
            "each lost recv stamp leaves exactly one send unmatched"
        );
        // Truncation loses data but does not corrupt clocks.
        assert_eq!(dag.lamport_violations(), 0);
    }

    #[test]
    fn causal_lamport_violation_detected_on_corrupted_clock() {
        // A zeroed receive clock on a late round breaks Lamport
        // monotonicity; the validator must flag it rather than trusting
        // the stamps blindly.
        let run = traced_run();
        let trace = run.trace.expect("trace requested");
        assert_eq!(sqm_obs::MessageDag::build(&trace).lamport_violations(), 0);

        let mut parties = trace.parties.clone();
        let last = parties[0].causal.len() - 1;
        assert!(last >= 1, "need at least two rounds to corrupt the last");
        parties[0].causal[last].lamport_recv = 0;
        let corrupted = sqm_obs::Trace::from_parties(trace.latency, parties);
        let dag = sqm_obs::MessageDag::build(&corrupted);
        assert!(
            dag.lamport_violations() > 0,
            "zeroed clock must be reported as a Lamport violation"
        );
    }

    #[test]
    fn trace_absent_by_default() {
        let run = engine(3).run::<M61, _, _>(|ctx| {
            let x = ctx.share_input(0, (ctx.id == 0).then(|| vec![M61::ONE]).as_deref(), 1);
            ctx.open(&x)
        });
        assert!(run.trace.is_none());
    }

    #[test]
    fn per_element_reference_mode_is_bit_identical_except_messages() {
        // Batching::Off reframes each round as one message per element but
        // must not change anything else: same outputs, rounds, bytes, and
        // element counts; `messages` collapses to the element count.
        let program = |ctx: &mut PartyCtx<M61>| {
            ctx.set_phase("input");
            let a = ctx.share_input(
                0,
                (ctx.id == 0)
                    .then(|| {
                        (0..300)
                            .map(|k| M61::from_i128(k - 150))
                            .collect::<Vec<_>>()
                    })
                    .as_deref(),
                300,
            );
            ctx.set_phase("mul");
            let sq = ctx.mul(&a, &a);
            ctx.set_phase("open");
            ctx.open(&sq)
        };
        let base = MpcConfig::semi_honest(4).with_latency(Duration::ZERO);
        for backend in [NetBackend::InProcess, NetBackend::tcp()] {
            let batched = MpcEngine::new(base.clone().with_backend(backend.clone()))
                .run::<M61, _, _>(program);
            let reference = MpcEngine::new(
                base.clone()
                    .with_backend(backend.clone())
                    .with_batching(Batching::Off),
            )
            .run::<M61, _, _>(program);
            assert_eq!(batched.outputs, reference.outputs, "{backend:?}");
            assert_eq!(
                batched.stats.total.rounds, reference.stats.total.rounds,
                "{backend:?}"
            );
            assert_eq!(
                batched.stats.total.bytes, reference.stats.total.bytes,
                "{backend:?}"
            );
            assert_eq!(
                batched.stats.total.elems, reference.stats.total.elems,
                "{backend:?}"
            );
            // In the reference mode every element is its own message.
            assert_eq!(
                reference.stats.total.messages, reference.stats.total.elems,
                "{backend:?}"
            );
            // The batched path frames each link's round in one message, so
            // it sends strictly fewer messages on this multi-element run.
            assert!(
                batched.stats.total.messages < reference.stats.total.messages,
                "{backend:?}: {} !< {}",
                batched.stats.total.messages,
                reference.stats.total.messages
            );
            // Per-phase accounting splits the same way.
            for phase in ["input", "mul", "open"] {
                let b = &batched.stats.phases[phase];
                let r = &reference.stats.phases[phase];
                assert_eq!(b.rounds, r.rounds, "{backend:?} {phase}");
                assert_eq!(b.bytes, r.bytes, "{backend:?} {phase}");
                assert_eq!(b.elems, r.elems, "{backend:?} {phase}");
                assert_eq!(r.messages, r.elems, "{backend:?} {phase}");
            }
        }
    }

    #[test]
    fn worker_pool_width_does_not_change_results() {
        // Any worker count / parallelism threshold must produce the exact
        // same run: the RNG draws are serialized before the pool fans out.
        let program = |ctx: &mut PartyCtx<M61>| {
            let a = ctx.share_input(
                0,
                (ctx.id == 0)
                    .then(|| (0..777u64).map(M61::from_u64).collect::<Vec<_>>())
                    .as_deref(),
                777,
            );
            let sq = ctx.mul(&a, &a);
            ctx.open(&sq)
        };
        let base = MpcConfig::semi_honest(5).with_latency(Duration::ZERO);
        let golden = MpcEngine::new(base.clone()).run::<M61, _, _>(program);
        for opts in [
            BatchOptions {
                workers: 1,
                min_parallel_width: 1,
            },
            BatchOptions {
                workers: 2,
                min_parallel_width: 0,
            },
            BatchOptions {
                workers: 7,
                min_parallel_width: 10,
            },
            BatchOptions {
                workers: 4,
                min_parallel_width: 1_000_000,
            },
        ] {
            let run = MpcEngine::new(base.clone().with_batching(Batching::PerRound(opts)))
                .run::<M61, _, _>(program);
            assert_eq!(run.outputs, golden.outputs, "{opts:?}");
            assert_eq!(run.stats.total.messages, golden.stats.total.messages);
            assert_eq!(run.stats.total.bytes, golden.stats.total.bytes);
            assert_eq!(run.stats.total.elems, golden.stats.total.elems);
        }
    }

    #[test]
    fn two_party_config_t_zero_still_multiplies() {
        // With n=2, t=0: degenerate sharing (each "share" IS the secret, so
        // there is no secrecy between the two parties — see the caveat on
        // MpcConfig::semi_honest), but the protocol must still be correct.
        let run = engine(2).run::<M61, _, _>(|ctx| {
            let a = ctx.share_input(
                0,
                (ctx.id == 0).then(|| vec![M61::from_u64(6)]).as_deref(),
                1,
            );
            let b = ctx.share_input(
                1,
                (ctx.id == 1).then(|| vec![M61::from_u64(7)]).as_deref(),
                1,
            );
            let p = ctx.mul(&a, &b);
            ctx.open(&p)
        });
        for out in run.outputs {
            assert_eq!(out[0].to_canonical(), 42);
        }
    }
}
