//! Shamir secret sharing over a prime field.
//!
//! A secret `s` is hidden as the constant term of a random degree-`t`
//! polynomial `f`; party `i` (0-based) receives the evaluation `f(i+1)`.
//! Any `t+1` shares reconstruct `s` by Lagrange interpolation at 0; any `t`
//! shares are jointly uniform and reveal nothing (information-theoretic
//! secrecy, the foundation of BGW's semi-honest security).

use rand::Rng;
use sqm_field::PrimeField;

/// One party's share: the evaluation point is implied by the party index
/// (`x = party + 1`).
pub type ShamirShare<F> = F;

/// Split `secret` into `n` shares with threshold `t` (degree-`t` polynomial;
/// any `t+1` shares reconstruct, any `t` reveal nothing).
pub fn share_secret<F: PrimeField, R: Rng + ?Sized>(
    rng: &mut R,
    secret: F,
    t: usize,
    n: usize,
) -> Vec<ShamirShare<F>> {
    assert!(n >= 1, "need at least one party");
    assert!(t < n, "threshold t={t} must be below the party count n={n}");
    let mut coeffs = Vec::with_capacity(t + 1);
    coeffs.push(secret);
    for _ in 0..t {
        coeffs.push(F::random(rng));
    }
    (1..=n as u64)
        .map(|x| sqm_field::traits::horner(&coeffs, F::from_u64(x)))
        .collect()
}

/// Share a whole vector of secrets at once — the width-parallel batch
/// variant of [`share_secret`] behind the engine's round-batched path.
///
/// The polynomial coefficients are drawn **serially, in secret order**
/// (`[secret, r_1..r_t]` per secret), so the RNG stream — and therefore
/// every wire byte — is bit-identical to calling [`share_secret`] once per
/// secret. Only the pure polynomial evaluations fan out across `workers`
/// scoped threads, and only once the batch is at least `min_parallel_width`
/// secrets wide (thread hand-off costs more than it saves on narrow
/// batches).
///
/// Returns party-major shares: `out[j][k]` is party `j`'s share of
/// `secrets[k]`.
pub fn share_secrets_batch<F: PrimeField, R: Rng + ?Sized>(
    rng: &mut R,
    secrets: &[F],
    t: usize,
    n: usize,
    workers: usize,
    min_parallel_width: usize,
) -> Vec<Vec<F>> {
    assert!(n >= 1, "need at least one party");
    assert!(t < n, "threshold t={t} must be below the party count n={n}");
    let width = secrets.len();
    let mut coeffs = Vec::with_capacity(width * (t + 1));
    for &s in secrets {
        coeffs.push(s);
        for _ in 0..t {
            coeffs.push(F::random(rng));
        }
    }
    let xs: Vec<F> = (1..=n as u64).map(F::from_u64).collect();
    // Secret-major scratch (row `k` holds all n shares of secret `k`) so
    // each worker owns a contiguous chunk; transposed to party-major below.
    let mut rows = vec![F::ZERO; width * n];
    let eval_rows = |rows: &mut [F], coeffs: &[F]| {
        for (row, poly) in rows.chunks_mut(n).zip(coeffs.chunks(t + 1)) {
            for (share, &x) in row.iter_mut().zip(&xs) {
                *share = sqm_field::traits::horner(poly, x);
            }
        }
    };
    let workers = workers.max(1);
    if workers > 1 && width >= min_parallel_width.max(2) {
        let chunk = width.div_ceil(workers);
        std::thread::scope(|s| {
            let eval_rows = &eval_rows;
            for (rows, coeffs) in rows
                .chunks_mut(chunk * n)
                .zip(coeffs.chunks(chunk * (t + 1)))
            {
                s.spawn(move || eval_rows(rows, coeffs));
            }
        });
    } else {
        eval_rows(&mut rows, &coeffs);
    }
    let mut per_party: Vec<Vec<F>> = vec![Vec::with_capacity(width); n];
    for row in rows.chunks(n) {
        for (j, &share) in row.iter().enumerate() {
            per_party[j].push(share);
        }
    }
    per_party
}

/// Lagrange coefficients for interpolating at 0 from evaluation points
/// `x = i+1` for each party index `i` in `parties`.
pub fn lagrange_at_zero<F: PrimeField>(parties: &[usize]) -> Vec<F> {
    assert!(!parties.is_empty(), "need at least one share");
    let xs: Vec<F> = parties.iter().map(|&i| F::from_u64(i as u64 + 1)).collect();
    let mut coeffs = Vec::with_capacity(xs.len());
    for (j, &xj) in xs.iter().enumerate() {
        let mut num = F::ONE;
        let mut den = F::ONE;
        for (k, &xk) in xs.iter().enumerate() {
            if k != j {
                num *= -xk; // (0 - x_k)
                den *= xj - xk;
            }
        }
        coeffs.push(num * den.inverse());
    }
    coeffs
}

/// Reconstruct the secret from `(party_index, share)` pairs. The number of
/// pairs must exceed the sharing degree.
pub fn reconstruct<F: PrimeField>(shares: &[(usize, F)]) -> F {
    let parties: Vec<usize> = shares.iter().map(|&(i, _)| i).collect();
    let coeffs = lagrange_at_zero::<F>(&parties);
    shares
        .iter()
        .zip(&coeffs)
        .map(|(&(_, s), &c)| s * c)
        .fold(F::ZERO, |acc, v| acc + v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sqm_field::{M127, M61};

    #[test]
    fn share_and_reconstruct_m61() {
        let mut rng = StdRng::seed_from_u64(1);
        let secret = M61::from_i128(-123456);
        let shares = share_secret(&mut rng, secret, 2, 5);
        let pairs: Vec<(usize, M61)> = shares.iter().cloned().enumerate().collect();
        assert_eq!(reconstruct(&pairs[..3]), secret);
        assert_eq!(reconstruct(&pairs[1..4]), secret);
        assert_eq!(reconstruct(&pairs), secret);
    }

    #[test]
    fn share_and_reconstruct_m127() {
        let mut rng = StdRng::seed_from_u64(2);
        let secret = M127::from_i128(1i128 << 100);
        let shares = share_secret(&mut rng, secret, 3, 7);
        let pairs: Vec<(usize, M127)> = shares.iter().cloned().enumerate().collect();
        assert_eq!(reconstruct(&pairs[2..6]), secret);
    }

    #[test]
    fn any_subset_of_t_plus_one_works() {
        let mut rng = StdRng::seed_from_u64(3);
        let secret = M61::from_u64(777);
        let shares = share_secret(&mut rng, secret, 2, 6);
        for subset in [[0usize, 2, 4], [1, 3, 5], [0, 1, 5], [3, 4, 5]] {
            let pairs: Vec<(usize, M61)> = subset.iter().map(|&i| (i, shares[i])).collect();
            assert_eq!(reconstruct(&pairs), secret, "subset {subset:?}");
        }
    }

    #[test]
    fn shares_are_additive() {
        // [a] + [b] is a sharing of a + b (the linearity BGW's add gates
        // rely on).
        let mut rng = StdRng::seed_from_u64(4);
        let (a, b) = (M61::from_u64(100), M61::from_i128(-30));
        let sa = share_secret(&mut rng, a, 2, 5);
        let sb = share_secret(&mut rng, b, 2, 5);
        let sum: Vec<(usize, M61)> = sa
            .iter()
            .zip(&sb)
            .map(|(&x, &y)| x + y)
            .enumerate()
            .collect();
        assert_eq!(reconstruct(&sum[..3]), a + b);
    }

    #[test]
    fn local_products_reconstruct_with_2t_plus_one() {
        // [a]*[b] element-wise is a degree-2t sharing of a*b.
        let mut rng = StdRng::seed_from_u64(5);
        let (a, b) = (M61::from_u64(12), M61::from_u64(34));
        let t = 2;
        let n = 2 * t + 1;
        let sa = share_secret(&mut rng, a, t, n);
        let sb = share_secret(&mut rng, b, t, n);
        let prod: Vec<(usize, M61)> = sa
            .iter()
            .zip(&sb)
            .map(|(&x, &y)| x * y)
            .enumerate()
            .collect();
        assert_eq!(reconstruct(&prod), a * b);
        // t+1 points are NOT enough for the degree-2t product polynomial.
        assert_ne!(reconstruct(&prod[..t + 1]), a * b);
    }

    #[test]
    fn t_shares_are_statistically_uninformative() {
        // A single share of two very different secrets has the same marginal
        // distribution (uniform). Compare coarse histograms.
        let mut rng = StdRng::seed_from_u64(6);
        let n_trials = 4000;
        let buckets = 8;
        let p = M61::modulus();
        let mut h0 = vec![0usize; buckets];
        let mut h1 = vec![0usize; buckets];
        for _ in 0..n_trials {
            let s0 = share_secret(&mut rng, M61::ZERO, 1, 3)[0];
            let s1 = share_secret(&mut rng, M61::from_u128(p / 2), 1, 3)[0];
            h0[(s0.to_canonical() * buckets as u128 / p) as usize] += 1;
            h1[(s1.to_canonical() * buckets as u128 / p) as usize] += 1;
        }
        let expect = n_trials as f64 / buckets as f64;
        for b in 0..buckets {
            for h in [&h0, &h1] {
                let dev = (h[b] as f64 - expect).abs() / expect.sqrt();
                assert!(dev < 5.0, "bucket {b} deviates {dev} sigma");
            }
        }
    }

    #[test]
    fn lagrange_weights_sum_to_one_at_degree_zero() {
        // Interpolating a constant polynomial: weights sum to 1.
        let w = lagrange_at_zero::<M61>(&[0, 1, 2, 3]);
        let sum = w.iter().fold(M61::ZERO, |a, &b| a + b);
        assert_eq!(sum, M61::ONE);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn rejects_threshold_not_below_n() {
        let mut rng = StdRng::seed_from_u64(0);
        share_secret(&mut rng, M61::ONE, 3, 3);
    }

    /// The batch kernel must consume the RNG in the exact order the scalar
    /// loop does, so both paths produce bit-identical shares — the
    /// determinism contract the engine's batched/reference equivalence
    /// rests on.
    #[test]
    fn batch_sharing_is_bit_identical_to_scalar_loop() {
        let (t, n) = (2, 5);
        for width in [0usize, 1, 3, 7, 64, 513] {
            let secrets: Vec<M61> = (0..width as u64)
                .map(|k| M61::from_i128(k as i128 - 200))
                .collect();
            let mut scalar_rng = StdRng::seed_from_u64(9 + width as u64);
            let mut per_party_scalar: Vec<Vec<M61>> = vec![Vec::new(); n];
            for &v in &secrets {
                for (j, s) in share_secret(&mut scalar_rng, v, t, n)
                    .into_iter()
                    .enumerate()
                {
                    per_party_scalar[j].push(s);
                }
            }
            for (workers, min_width) in [(1, 4), (4, 4), (4, 0), (3, 1_000_000)] {
                let mut batch_rng = StdRng::seed_from_u64(9 + width as u64);
                let batch = share_secrets_batch(&mut batch_rng, &secrets, t, n, workers, min_width);
                assert_eq!(batch, per_party_scalar, "width={width} workers={workers}");
                // Both paths must leave the RNG in the same state.
                assert_eq!(
                    rand::Rng::gen::<u64>(&mut batch_rng),
                    rand::Rng::gen::<u64>(&mut scalar_rng.clone()),
                    "width={width} workers={workers}"
                );
            }
        }
    }

    #[test]
    fn batch_shares_reconstruct() {
        let mut rng = StdRng::seed_from_u64(11);
        let secrets: Vec<M61> = (0..300u64).map(M61::from_u64).collect();
        let per_party = share_secrets_batch(&mut rng, &secrets, 2, 5, 4, 16);
        for (k, &s) in secrets.iter().enumerate() {
            let pairs: Vec<(usize, M61)> = (0..5).map(|j| (j, per_party[j][k])).collect();
            assert_eq!(reconstruct(&pairs[..3]), s, "secret {k}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sqm_field::{PrimeField, M61};

    proptest! {
        #[test]
        fn prop_any_large_enough_subset_reconstructs(
            secret in any::<i64>(),
            t in 0usize..4,
            extra in 0usize..4,
            seed in any::<u64>(),
            subset_seed in any::<u64>(),
        ) {
            let n = 2 * t + 1 + extra;
            let mut rng = StdRng::seed_from_u64(seed);
            let s = M61::from_i128(secret as i128);
            let shares = share_secret(&mut rng, s, t, n);
            // Pick a random (t+1)-subset.
            let mut idx: Vec<usize> = (0..n).collect();
            let mut srng = StdRng::seed_from_u64(subset_seed);
            for i in (1..n).rev() {
                let j = rand::Rng::gen_range(&mut srng, 0..=i);
                idx.swap(i, j);
            }
            let pairs: Vec<(usize, M61)> = idx[..t + 1].iter().map(|&i| (i, shares[i])).collect();
            prop_assert_eq!(reconstruct(&pairs), s);
        }

        #[test]
        fn prop_linearity_of_sharing(
            a in any::<i32>(),
            b in any::<i32>(),
            scale in 1i64..1000,
            seed in any::<u64>(),
        ) {
            // alpha*[a] + [b] reconstructs alpha*a + b.
            let mut rng = StdRng::seed_from_u64(seed);
            let (t, n) = (2, 5);
            let fa = M61::from_i128(a as i128);
            let fb = M61::from_i128(b as i128);
            let alpha = M61::from_i128(scale as i128);
            let sa = share_secret(&mut rng, fa, t, n);
            let sb = share_secret(&mut rng, fb, t, n);
            let combo: Vec<(usize, M61)> = sa
                .iter()
                .zip(&sb)
                .map(|(&x, &y)| alpha * x + y)
                .enumerate()
                .collect();
            prop_assert_eq!(reconstruct(&combo[..t + 1]), alpha * fa + fb);
        }
    }
}
