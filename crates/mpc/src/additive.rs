//! Additive secret sharing with Beaver-triple multiplication — a second,
//! independent MPC backend.
//!
//! The paper (Section II) notes that BGW is used "as a black box" and "one
//! can replace BGW with any other MPC protocol without affecting the DP
//! guarantees" (e.g. Sharemind, ABY3, SPDZ-family). This module provides
//! that replacement: the SPDZ-style *online* phase over additive shares
//! (`s = sum_i s_i` with every `s_i` uniform), with multiplication triples
//! supplied by a trusted preprocessing dealer — the standard semi-honest
//! offline/online model. Linear operations are local; multiplication costs
//! one opening round; opening costs one round.
//!
//! Compared with Shamir/BGW: additive sharing tolerates `t = n - 1`
//! corruptions (full threshold) but has no redundancy and needs the dealer
//! (or an OT-based offline phase) for triples; BGW needs `t < n/2` but is
//! self-contained. Both produce identical opened values, which the tests
//! cross-check.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqm_field::PrimeField;
use sqm_net::transport::{build_mesh, Transport};
use sqm_net::{TraceHeader, TransportError};
use sqm_obs::live;
use sqm_obs::metrics;
use sqm_obs::prof;
use sqm_obs::trace::{MsgStamp, PartyRecorder, Trace};

use crate::engine::{install_quiet_abort_hook, make_recorder, select_error, MpcConfig, PartyAbort};
use crate::stats::{merge, PartyStats, RunStats};

/// One party's additive shares of a Beaver triple `(a, b, c = a*b)`.
#[derive(Copy, Clone, Debug)]
pub struct AdditiveTriple<F: PrimeField> {
    a: F,
    b: F,
    c: F,
}

/// The result of an additive-backend run.
#[derive(Debug)]
pub struct AdditiveRun<T> {
    pub outputs: Vec<T>,
    pub stats: RunStats,
    /// Structured per-party trace (only when [`MpcConfig::trace`] is set).
    pub trace: Option<Trace>,
}

/// The additive-sharing engine.
pub struct AdditiveEngine {
    config: MpcConfig,
}

impl AdditiveEngine {
    /// Any `n >= 2` works; the threshold field of the config is ignored
    /// (additive sharing is full-threshold).
    pub fn new(config: MpcConfig) -> Self {
        assert!(config.n_parties >= 2, "need at least 2 parties");
        AdditiveEngine { config }
    }

    /// Run an SPMD program at every party.
    pub fn run<F, T, P>(&self, program: P) -> AdditiveRun<T>
    where
        F: PrimeField,
        T: Send,
        P: Fn(&mut AdditiveCtx<F>) -> T + Sync,
    {
        self.try_run(program)
            .unwrap_or_else(|e| panic!("mpc transport failure: {e}"))
    }

    /// Like [`AdditiveEngine::run`], but transport failures surface as the
    /// typed [`TransportError`] instead of panicking.
    pub fn try_run<F, T, P>(&self, program: P) -> Result<AdditiveRun<T>, TransportError>
    where
        F: PrimeField,
        T: Send,
        P: Fn(&mut AdditiveCtx<F>) -> T + Sync,
    {
        let n = self.config.n_parties;
        install_quiet_abort_hook();
        if let Some(pc) = &self.config.prof {
            prof::install(pc, self.config.seed);
        }
        let endpoints = build_mesh::<F>(n, &self.config.backend, self.config.faults.as_ref())?;
        let program = &program;
        // Same live-telemetry bracketing as the BGW engine: the guard's
        // Drop covers party-thread panics unwinding past the join.
        let live_run = self
            .config
            .live
            .as_ref()
            .map(|lc| live::begin_run(lc, n, self.config.seed));
        type PartyResult<T> = (T, PartyStats, Option<sqm_obs::trace::PartyTrace>);
        let frame_mode = self.config.batching.frame_mode();
        let results: Vec<Result<PartyResult<T>, TransportError>> = std::thread::scope(|s| {
            let handles: Vec<_> = endpoints
                .into_iter()
                .map(|mut endpoint| {
                    endpoint.set_frame_mode(frame_mode);
                    let id = endpoint.id();
                    let config = self.config.clone();
                    s.spawn(move || {
                        let mut ctx = AdditiveCtx {
                            id,
                            n,
                            rng: StdRng::seed_from_u64(
                                config.seed ^ (0xADD1_7155_u64.wrapping_mul(id as u64 + 1)),
                            ),
                            dealer_rng: StdRng::seed_from_u64(config.seed ^ 0x00DE_A1E4),
                            endpoint,
                            stats: PartyStats::default(),
                            recorder: make_recorder(&config, id),
                            phase: "default".to_string(),
                            phase_started: Instant::now(),
                            run_id: config.seed,
                            lamport: 0,
                            link_seq: vec![0; n],
                        };
                        match catch_unwind(AssertUnwindSafe(|| program(&mut ctx))) {
                            Ok(out) => {
                                ctx.flush_phase();
                                Ok((out, ctx.stats, ctx.recorder.map(PartyRecorder::finish)))
                            }
                            Err(payload) => match payload.downcast::<PartyAbort>() {
                                Ok(abort) => Err(abort.0),
                                Err(other) => resume_unwind(other),
                            },
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("party thread panicked"))
                .collect()
        });
        let mut outputs = Vec::with_capacity(n);
        let mut stats = Vec::with_capacity(n);
        let mut party_traces = Vec::with_capacity(n);
        let mut errors = Vec::new();
        for result in results {
            match result {
                Ok((out, ps, pt)) => {
                    outputs.push(out);
                    stats.push(ps);
                    party_traces.extend(pt);
                }
                Err(e) => errors.push(e),
            }
        }
        if !errors.is_empty() {
            let err = select_error(errors);
            if let Some(guard) = live_run {
                guard.fail(live::RunError::new(
                    err.kind(),
                    Some(err.party()),
                    err.round(),
                ));
            }
            return Err(err);
        }
        if let Some(guard) = live_run {
            guard.finish();
        }
        let trace = (party_traces.len() == n)
            .then(|| Trace::from_parties(self.config.latency, party_traces));
        Ok(AdditiveRun {
            outputs,
            stats: merge(stats, self.config.latency),
            trace,
        })
    }
}

/// One party's context in the additive backend.
pub struct AdditiveCtx<F: PrimeField> {
    pub id: usize,
    pub n: usize,
    rng: StdRng,
    /// The trusted dealer's randomness stream — identical at every party,
    /// modelling the preprocessing functionality that hands each party its
    /// triple shares. (Semi-honest offline/online model; a real deployment
    /// replaces this with an OT- or HE-based offline phase.)
    dealer_rng: StdRng,
    endpoint: Box<dyn Transport<F>>,
    stats: PartyStats,
    recorder: Option<PartyRecorder>,
    phase: String,
    phase_started: Instant,
    /// Causal stamping state (active only when tracing): run identifier
    /// (the engine seed), the party's Lamport clock, and one sequence
    /// counter per directed outgoing link.
    run_id: u64,
    lamport: u64,
    link_seq: Vec<u64>,
}

impl<F: PrimeField> AdditiveCtx<F> {
    /// Switch accounting phase.
    pub fn set_phase(&mut self, name: &str) {
        self.flush_phase();
        self.phase = name.to_string();
        if let Some(rec) = &mut self.recorder {
            rec.set_phase(name);
        }
    }

    fn flush_phase(&mut self) {
        // One measurement for both accounting and trace (see the BGW engine).
        let elapsed = self.phase_started.elapsed();
        self.stats.record_wall(&self.phase, elapsed);
        if let Some(rec) = &mut self.recorder {
            rec.flush_phase(elapsed);
        }
        self.phase_started = Instant::now();
    }

    fn exchange(&mut self, outgoing: Vec<Vec<F>>) -> Vec<Vec<F>> {
        let round_started = metrics::is_enabled().then(Instant::now);
        // Live telemetry (collector installed) — same out-of-band publish
        // path as the BGW engine; accounting is untouched either way.
        let live_round = live::is_active().then(|| (Instant::now(), self.endpoint.round()));
        // Cost profiling — same out-of-band recording as the BGW engine,
        // under the `additive;` path prefix.
        let prof_round = prof::is_active().then(|| (Instant::now(), self.endpoint.round()));
        // Causal stamping (traced runs only) — same protocol as the BGW
        // engine: every real outgoing payload carries this party's Lamport
        // clock and a per-link sequence number, out-of-band of the byte
        // accounting.
        let stamping = self.recorder.is_some().then(|| {
            let lamport_send = self.lamport + 1;
            let round = self.endpoint.round();
            let mut sends = Vec::new();
            let headers: Vec<Option<TraceHeader>> = outgoing
                .iter()
                .enumerate()
                .map(|(j, payload)| {
                    if j == self.id || payload.is_empty() {
                        return None;
                    }
                    let link_seq = self.link_seq[j];
                    self.link_seq[j] += 1;
                    sends.push(MsgStamp {
                        peer: j,
                        link_seq,
                        lamport: lamport_send,
                        round,
                    });
                    Some(TraceHeader {
                        run_id: self.run_id,
                        party: self.id as u32,
                        round,
                        link_seq,
                        lamport: lamport_send,
                    })
                })
                .collect();
            (headers, sends, lamport_send, self.phase_started.elapsed())
        });
        let result = match &stamping {
            Some((headers, ..)) => self
                .endpoint
                .exchange_stamped(outgoing, Some(headers.clone())),
            None => self.endpoint.exchange(outgoing),
        };
        let outcome = match result {
            Ok(outcome) => outcome,
            Err(e) => std::panic::panic_any(PartyAbort(e)),
        };
        let (messages, bytes) = (outcome.messages, outcome.bytes);
        self.stats
            .record_round(&self.phase, messages, bytes, outcome.elems);
        if let Some((t0, round)) = prof_round {
            let wall_ns = t0.elapsed().as_nanos() as u64;
            prof::record_round(
                &format!("additive;{};exchange", self.phase),
                messages,
                bytes,
                wall_ns,
            );
            prof::record_round(
                &format!("additive;{};round{round:04}", self.phase),
                messages,
                bytes,
                wall_ns,
            );
        }
        let events = self.endpoint.drain_events();
        if let Some((t0, round)) = live_round {
            for e in &events {
                if let Some(ev) = live::LiveEvent::fault(e.party, e.round, e.peer, &e.kind, e.value)
                {
                    live::publish(ev);
                }
            }
            live::publish(live::LiveEvent::round(
                self.id,
                round,
                &self.phase,
                t0.elapsed(),
                messages,
                bytes,
            ));
        }
        if let Some((_, sends, lamport_send, wall_send)) = stamping {
            let wall_recv = self.phase_started.elapsed();
            let recvs: Vec<MsgStamp> = outcome
                .headers
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != self.id)
                .filter_map(|(i, h)| {
                    h.map(|h| MsgStamp {
                        peer: i,
                        link_seq: h.link_seq,
                        lamport: h.lamport,
                        round: h.round,
                    })
                })
                .collect();
            let max_recv = recvs.iter().map(|s| s.lamport).max().unwrap_or(0);
            let lamport_recv = lamport_send.max(max_recv) + 1;
            self.lamport = lamport_recv;
            if let Some(rec) = &mut self.recorder {
                rec.record_causal_round(
                    wall_send,
                    wall_recv,
                    lamport_send,
                    lamport_recv,
                    sends,
                    recvs,
                );
            }
        }
        if let Some(rec) = &mut self.recorder {
            rec.record_round(messages, bytes);
            for event in events {
                rec.record_net_event(event);
            }
        }
        if let Some(t0) = round_started {
            metrics::histogram_record("mpc.round_wall_ns", t0.elapsed().as_nanos() as f64);
            metrics::counter_add("mpc.party_rounds", 1);
            metrics::counter_add("mpc.messages", messages);
            metrics::counter_add("mpc.bytes", bytes);
            metrics::histogram_record("mpc.messages_per_round", messages as f64);
        }
        outcome.incoming
    }

    /// Share a vector of secrets owned by `owner`: the owner sends uniform
    /// summands to everyone else and keeps the residual. One round.
    pub fn share_input(&mut self, owner: usize, values: Option<&[F]>, len: usize) -> Vec<F> {
        assert!(owner < self.n);
        let mut outgoing: Vec<Vec<F>> = vec![Vec::new(); self.n];
        if self.id == owner {
            let values = values.expect("owner must supply values");
            assert_eq!(values.len(), len);
            let mut per_party: Vec<Vec<F>> = vec![Vec::with_capacity(len); self.n];
            for &v in values {
                let mut residual = v;
                for (j, slot) in per_party.iter_mut().enumerate() {
                    if j == self.id {
                        continue;
                    }
                    let r = F::random(&mut self.rng);
                    residual -= r;
                    slot.push(r);
                }
                per_party[self.id].push(residual);
            }
            outgoing = per_party;
        }
        let incoming = self.exchange(outgoing);
        let mine = incoming[owner].clone();
        assert_eq!(mine.len(), len, "owner sent wrong share count");
        mine
    }

    /// `[a] + [b]`, local.
    pub fn add(&self, a: &[F], b: &[F]) -> Vec<F> {
        assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(&x, &y)| x + y).collect()
    }

    /// `[a] - [b]`, local.
    pub fn sub(&self, a: &[F], b: &[F]) -> Vec<F> {
        assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(&x, &y)| x - y).collect()
    }

    /// Multiply by a public constant, local.
    pub fn scale_public(&self, a: &[F], c: F) -> Vec<F> {
        a.iter().map(|&x| x * c).collect()
    }

    /// Add a public constant: exactly one party (index 0 by convention)
    /// shifts its share — the additive analog of BGW's every-party shift.
    pub fn add_public(&self, a: &[F], c: F) -> Vec<F> {
        a.iter()
            .map(|&x| if self.id == 0 { x + c } else { x })
            .collect()
    }

    /// Draw `count` Beaver triples from the trusted dealer. No
    /// communication: the dealer functionality is modelled by a shared
    /// randomness stream from which each party deterministically extracts
    /// *its own* share (and only its own — the full `a, b` values exist
    /// transiently inside the modelled functionality).
    pub fn dealer_triples(&mut self, count: usize) -> Vec<AdditiveTriple<F>> {
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            // The dealer samples all parties' shares; party i keeps row i.
            let mut a_shares = Vec::with_capacity(self.n);
            let mut b_shares = Vec::with_capacity(self.n);
            for _ in 0..self.n {
                a_shares.push(F::random(&mut self.dealer_rng));
                b_shares.push(F::random(&mut self.dealer_rng));
            }
            let a: F = a_shares.iter().fold(F::ZERO, |acc, &v| acc + v);
            let b: F = b_shares.iter().fold(F::ZERO, |acc, &v| acc + v);
            let c = a * b;
            // c is shared as: uniform shares for parties 1..n, residual to 0.
            let mut c_shares = Vec::with_capacity(self.n);
            let mut residual = c;
            for _ in 1..self.n {
                let r = F::random(&mut self.dealer_rng);
                residual -= r;
                c_shares.push(r);
            }
            c_shares.insert(0, residual);
            out.push(AdditiveTriple {
                a: a_shares[self.id],
                b: b_shares[self.id],
                c: c_shares[self.id],
            });
        }
        out
    }

    /// Beaver multiplication: one opening round for the masked values.
    pub fn mul_beaver(&mut self, x: &[F], y: &[F], triples: &[AdditiveTriple<F>]) -> Vec<F> {
        assert_eq!(x.len(), y.len());
        assert!(triples.len() >= x.len(), "not enough triples");
        let mut masked = Vec::with_capacity(2 * x.len());
        for ((&xi, &yi), t) in x.iter().zip(y).zip(triples) {
            masked.push(xi - t.a);
            masked.push(yi - t.b);
        }
        let opened = self.open(&masked);
        x.iter()
            .zip(triples)
            .enumerate()
            .map(|(k, (_, t))| {
                let d = opened[2 * k];
                let e = opened[2 * k + 1];
                // [z] = [c] + d[b] + e[a] + de (constant added by party 0).
                let mut z = t.c + t.b * d + t.a * e;
                if self.id == 0 {
                    z += d * e;
                }
                z
            })
            .collect()
    }

    /// Open shared values to all parties: everyone broadcasts its share and
    /// sums. One round.
    pub fn open(&mut self, shares: &[F]) -> Vec<F> {
        let incoming = self.exchange(vec![shares.to_vec(); self.n]);
        let len = shares.len();
        let mut out = vec![F::ZERO; len];
        for inc in &incoming {
            assert_eq!(inc.len(), len, "open: wrong share count");
            for (o, &s) in out.iter_mut().zip(inc) {
                *o += s;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqm_field::M61;
    use std::time::Duration;

    fn engine(n: usize) -> AdditiveEngine {
        AdditiveEngine::new(MpcConfig::semi_honest(n).with_latency(Duration::ZERO))
    }

    #[test]
    fn share_and_open_roundtrip() {
        let run = engine(4).run::<M61, _, _>(|ctx| {
            let v = vec![M61::from_i128(-99), M61::from_u64(1234)];
            let shares = ctx.share_input(1, (ctx.id == 1).then_some(&v), 2);
            ctx.open(&shares)
        });
        for out in run.outputs {
            assert_eq!(out[0].to_centered_i128(), -99);
            assert_eq!(out[1].to_centered_i128(), 1234);
        }
        assert_eq!(run.stats.total.rounds, 2);
    }

    #[test]
    fn linear_ops() {
        let run = engine(3).run::<M61, _, _>(|ctx| {
            let a = ctx.share_input(
                0,
                (ctx.id == 0).then(|| vec![M61::from_u64(10)]).as_deref(),
                1,
            );
            let b = ctx.share_input(
                1,
                (ctx.id == 1).then(|| vec![M61::from_u64(4)]).as_deref(),
                1,
            );
            let s = ctx.add(&a, &b);
            let d = ctx.scale_public(&s, M61::from_u64(3));
            let e = ctx.add_public(&d, M61::from_u64(8));
            ctx.open(&e)
        });
        for out in run.outputs {
            assert_eq!(out[0].to_canonical(), (10 + 4) * 3 + 8);
        }
    }

    #[test]
    fn beaver_multiplication() {
        for n in [2usize, 3, 5] {
            let run = engine(n).run::<M61, _, _>(|ctx| {
                let x = ctx.share_input(
                    0,
                    (ctx.id == 0)
                        .then(|| vec![M61::from_i128(-6), M61::from_u64(9)])
                        .as_deref(),
                    2,
                );
                let y = ctx.share_input(
                    1,
                    (ctx.id == 1)
                        .then(|| vec![M61::from_u64(7), M61::from_i128(-3)])
                        .as_deref(),
                    2,
                );
                let triples = ctx.dealer_triples(2);
                let z = ctx.mul_beaver(&x, &y, &triples);
                ctx.open(&z)
            });
            for out in run.outputs {
                assert_eq!(out[0].to_centered_i128(), -42, "n={n}");
                assert_eq!(out[1].to_centered_i128(), -27, "n={n}");
            }
        }
    }

    #[test]
    fn dealer_triples_are_consistent_and_valid() {
        let run = engine(3).run::<M61, _, _>(|ctx| {
            let triples = ctx.dealer_triples(5);
            let flat: Vec<M61> = triples.iter().flat_map(|t| [t.a, t.b, t.c]).collect();
            ctx.open(&flat)
        });
        for out in run.outputs {
            for chunk in out.chunks(3) {
                assert_eq!(chunk[0] * chunk[1], chunk[2]);
            }
        }
    }

    #[test]
    fn matches_bgw_backend_on_inner_product() {
        // Same inputs through both backends must open the same value.
        let xs: Vec<M61> = (1..=20u64).map(M61::from_u64).collect();
        let ys: Vec<M61> = (1..=20u64).map(|v| M61::from_u64(3 * v)).collect();
        let expect: u128 = (1..=20u128).map(|v| v * 3 * v).sum();

        let xs2 = xs.clone();
        let ys2 = ys.clone();
        let additive = engine(3).run::<M61, _, _>(move |ctx| {
            let x = ctx.share_input(0, (ctx.id == 0).then_some(&xs2[..]), 20);
            let y = ctx.share_input(1, (ctx.id == 1).then_some(&ys2[..]), 20);
            let triples = ctx.dealer_triples(20);
            let prods = ctx.mul_beaver(&x, &y, &triples);
            let sum = prods.iter().fold(M61::ZERO, |acc, &v| acc + v);
            ctx.open(&[sum])
        });
        for out in &additive.outputs {
            assert_eq!(out[0].to_canonical(), expect);
        }

        let bgw =
            crate::engine::MpcEngine::new(MpcConfig::semi_honest(3).with_latency(Duration::ZERO))
                .run::<M61, _, _>(move |ctx| {
                let x = ctx.share_input(0, (ctx.id == 0).then_some(&xs[..]), 20);
                let y = ctx.share_input(1, (ctx.id == 1).then_some(&ys[..]), 20);
                let ip = ctx.inner_product(&x, &y);
                ctx.open(&[ip])
            });
        assert_eq!(bgw.outputs[0][0].to_canonical(), expect);
    }

    #[test]
    fn single_share_reveals_nothing_statistically() {
        // A non-owner's share of a fixed secret is uniform: histogram test.
        let buckets = 8;
        let p = <M61 as PrimeField>::modulus();
        let mut hist = vec![0usize; buckets];
        let trials = 200;
        for seed in 0..trials {
            let cfg = MpcConfig::semi_honest(3)
                .with_latency(Duration::ZERO)
                .with_seed(seed);
            let run = AdditiveEngine::new(cfg).run::<M61, _, _>(|ctx| {
                let v = vec![M61::from_u64(42)]; // fixed secret
                let shares = ctx.share_input(0, (ctx.id == 0).then_some(&v), 1);
                shares[0]
            });
            // Party 1's share:
            let s = run.outputs[1].to_canonical();
            hist[(s * buckets as u128 / p) as usize] += 1;
        }
        let expect = trials as f64 / buckets as f64;
        for (b, &h) in hist.iter().enumerate() {
            assert!(
                (h as f64 - expect).abs() < 6.0 * expect.sqrt(),
                "bucket {b}: {h} vs {expect}"
            );
        }
    }

    #[test]
    fn trace_matches_stats_exactly() {
        let cfg = MpcConfig::semi_honest(3)
            .with_latency(Duration::from_millis(100))
            .with_trace(true);
        let run = AdditiveEngine::new(cfg).run::<M61, _, _>(|ctx| {
            ctx.set_phase("input");
            let x = ctx.share_input(
                0,
                (ctx.id == 0).then(|| vec![M61::from_u64(2); 4]).as_deref(),
                4,
            );
            let triples = ctx.dealer_triples(4);
            ctx.set_phase("online");
            let x2 = x.clone();
            let z = ctx.mul_beaver(&x, &x2, &triples);
            ctx.open(&z)
        });
        let summary = run.trace.expect("trace requested").summary();
        assert_eq!(summary.total_simulated(), run.stats.simulated_time());
        assert_eq!(summary.total.rounds, run.stats.total.rounds);
        assert_eq!(summary.total.bytes, run.stats.total.bytes);
    }

    #[test]
    fn causal_critical_path_matches_simulated_time_exactly() {
        // Same exactness contract as the BGW engine: the critical path of
        // the reconstructed message DAG is the virtual clock, bit-exact.
        let cfg = MpcConfig::semi_honest(3)
            .with_latency(Duration::from_millis(100))
            .with_trace(true);
        let run = AdditiveEngine::new(cfg).run::<M61, _, _>(|ctx| {
            ctx.set_phase("input");
            let x = ctx.share_input(
                0,
                (ctx.id == 0).then(|| vec![M61::from_u64(2); 4]).as_deref(),
                4,
            );
            let triples = ctx.dealer_triples(4);
            ctx.set_phase("online");
            let x2 = x.clone();
            let z = ctx.mul_beaver(&x, &x2, &triples);
            ctx.open(&z)
        });
        let trace = run.trace.expect("trace requested");
        let dag = sqm_obs::MessageDag::build(&trace);
        assert!(dag.fully_matched());
        assert_eq!(dag.lamport_violations(), 0);
        assert_eq!(dag.edges().len() as u64, run.stats.total.messages);
        assert_eq!(dag.critical_path().total, run.stats.simulated_time());
    }

    #[test]
    fn beaver_online_round_count() {
        let run = engine(4).run::<M61, _, _>(|ctx| {
            let x = ctx.share_input(
                0,
                (ctx.id == 0).then(|| vec![M61::from_u64(2); 8]).as_deref(),
                8,
            );
            let triples = ctx.dealer_triples(8);
            ctx.set_phase("online");
            let x2 = x.clone();
            let z = ctx.mul_beaver(&x, &x2, &triples);
            ctx.open(&z)
        });
        assert_eq!(run.stats.phases["online"].rounds, 2);
        for out in run.outputs {
            assert!(out.iter().all(|v| v.to_canonical() == 4));
        }
    }
}
