//! Wire format for field-element vectors — re-exported from [`sqm_net`].
//!
//! The format lives in `sqm-net` (below this crate in the dependency
//! graph) because the TCP backend moves these exact bytes; this module
//! keeps the historical `mpc::wire::{encode, decode, encoded_len}` paths
//! working. `decode` returns `Result<_, WireError>` — bytes arriving from
//! a real socket are untrusted input, so malformed lengths and
//! non-canonical elements are errors, not panics.

pub use sqm_net::wire::{decode, encode, encoded_len, WireError};

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sqm_field::{PrimeField, M127, M61};

    // Satellite: proptest round-trips for both fields, explicitly seeding
    // the canonical boundary values 0 and p-1 into every generated vector.
    proptest! {
        #[test]
        fn roundtrip_m61_with_boundaries(raw in proptest::collection::vec(any::<u64>(), 0..64)) {
            let mut vals: Vec<M61> = raw.into_iter().map(|v| M61::from_u128(v as u128 % M61::modulus())).collect();
            vals.push(M61::from_u128(0));
            vals.push(M61::from_u128(M61::modulus() - 1));
            let bytes = encode(&vals);
            prop_assert_eq!(bytes.len() as u64, encoded_len::<M61>(vals.len()));
            let back = decode::<M61>(bytes).expect("canonical round-trip");
            prop_assert_eq!(back, vals);
        }

        #[test]
        fn roundtrip_m127_with_boundaries(raw in proptest::collection::vec(any::<u64>(), 0..64)) {
            let m = M127::modulus();
            let mut vals: Vec<M127> = raw
                .into_iter()
                .map(|v| {
                    // Spread 64-bit raws across the 127-bit range.
                    let wide = (v as u128).wrapping_mul(0x1_0000_0001_0000_0001) % m;
                    M127::from_u128(wide)
                })
                .collect();
            vals.push(M127::from_u128(0));
            vals.push(M127::from_u128(m - 1));
            let bytes = encode(&vals);
            prop_assert_eq!(bytes.len() as u64, encoded_len::<M127>(vals.len()));
            let back = decode::<M127>(bytes).expect("canonical round-trip");
            prop_assert_eq!(back, vals);
        }

        #[test]
        fn ragged_buffers_always_rejected(len in 1usize..64) {
            prop_assume!(len % M61::byte_width() != 0);
            let buf = bytes::Bytes::from(vec![0u8; len]);
            prop_assert_eq!(
                decode::<M61>(buf).unwrap_err(),
                WireError::RaggedBuffer { len, width: M61::byte_width() }
            );
        }
    }

    #[test]
    fn non_canonical_is_an_error_not_a_panic() {
        let above = M61::modulus(); // p itself is the smallest non-canonical value
        let buf = bytes::Bytes::from((above as u64).to_le_bytes().to_vec());
        assert!(matches!(
            decode::<M61>(buf),
            Err(WireError::NonCanonical { .. })
        ));
    }
}
