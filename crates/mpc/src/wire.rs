//! Wire format for field-element vectors.
//!
//! The in-process transport passes typed values, but communication *costs*
//! are accounted as if every element were serialized with this format
//! (little-endian, fixed width per field). The encoder/decoder is also used
//! by tests to validate that the byte accounting matches a real wire format.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use sqm_field::PrimeField;

/// Encode a vector of field elements (fixed `F::byte_width()` bytes each,
/// little-endian canonical representative).
pub fn encode<F: PrimeField>(values: &[F]) -> Bytes {
    let w = F::byte_width();
    let mut buf = BytesMut::with_capacity(values.len() * w);
    for v in values {
        let c = v.to_canonical();
        buf.put_slice(&c.to_le_bytes()[..w]);
    }
    buf.freeze()
}

/// Decode a buffer produced by [`encode`]. Panics if the buffer length is
/// not a multiple of the element width or an element is non-canonical.
pub fn decode<F: PrimeField>(mut buf: Bytes) -> Vec<F> {
    let w = F::byte_width();
    assert!(
        buf.len().is_multiple_of(w),
        "wire buffer length {} not a multiple of element width {w}",
        buf.len()
    );
    let mut out = Vec::with_capacity(buf.len() / w);
    while buf.has_remaining() {
        let mut raw = [0u8; 16];
        buf.copy_to_slice(&mut raw[..w]);
        let c = u128::from_le_bytes(raw);
        assert!(c < F::modulus(), "non-canonical element on the wire");
        out.push(F::from_u128(c));
    }
    out
}

/// The number of bytes [`encode`] produces for `len` elements.
pub fn encoded_len<F: PrimeField>(len: usize) -> u64 {
    (len * F::byte_width()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sqm_field::{M127, M61};

    #[test]
    fn roundtrip_m61() {
        let mut rng = StdRng::seed_from_u64(1);
        let vals: Vec<M61> = (0..100).map(|_| M61::random(&mut rng)).collect();
        let bytes = encode(&vals);
        assert_eq!(bytes.len() as u64, encoded_len::<M61>(vals.len()));
        assert_eq!(decode::<M61>(bytes), vals);
    }

    #[test]
    fn roundtrip_m127() {
        let mut rng = StdRng::seed_from_u64(2);
        let vals: Vec<M127> = (0..50).map(|_| M127::random(&mut rng)).collect();
        let bytes = encode(&vals);
        assert_eq!(bytes.len() as u64, encoded_len::<M127>(vals.len()));
        assert_eq!(decode::<M127>(bytes), vals);
    }

    #[test]
    fn widths() {
        assert_eq!(encoded_len::<M61>(1), 8);
        assert_eq!(encoded_len::<M127>(1), 16);
    }

    #[test]
    fn empty() {
        let bytes = encode::<M61>(&[]);
        assert!(bytes.is_empty());
        assert!(decode::<M61>(bytes).is_empty());
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn rejects_ragged_buffer() {
        decode::<M61>(Bytes::from_static(&[1, 2, 3]));
    }
}
