//! Acceptance tests for the cost profiler (`sqm_obs::prof`) at the engine
//! level: profiling must be *passive* (outputs and every deterministic
//! `RunStats` counter bit-identical with profiling on or off), the
//! deterministic artifacts must be byte-identical across two same-seed
//! runs, and the batching-opportunity report attached by `eval_mpc` must
//! agree exactly with the circuit's own `n_mul_gates()` / `mul_depth()`.
//!
//! The profiler is process-global (like the live collector), so these
//! tests serialize on one mutex and reset the profile between runs.

use std::sync::Mutex;
use std::time::Duration;

use sqm_field::{PrimeField, M61};
use sqm_mpc::circuit::{Circuit, CircuitBuilder};
use sqm_mpc::{AdditiveEngine, MpcConfig, MpcEngine, ProfConfig};
use sqm_obs::prof;

static PROF_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    PROF_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Product of six inputs (two per party): mul widths 3, 1, 1 — a circuit
/// with a real batching profile.
fn product_circuit() -> Circuit<M61> {
    let mut b = CircuitBuilder::<M61>::new(3);
    let mut wires = Vec::new();
    for party in 0..3 {
        for _ in 0..2 {
            wires.push(b.input(party));
        }
    }
    let p = b.product(&wires);
    b.output(p);
    b.build()
}

fn run_product(prof_cfg: Option<ProfConfig>) -> sqm_mpc::MpcRun<Vec<M61>> {
    let circ = product_circuit();
    let cfg = MpcConfig::semi_honest(3)
        .with_latency(Duration::ZERO)
        .with_seed(33)
        .with_prof(prof_cfg);
    MpcEngine::new(cfg).run::<M61, _, _>(move |ctx| {
        ctx.set_phase("compute");
        let my_inputs = vec![M61::from_u64(ctx.id as u64 + 2); 2];
        let shares = circ.eval_mpc(ctx, &my_inputs);
        ctx.set_phase("open");
        ctx.open(&shares)
    })
}

#[test]
fn outputs_and_runstats_bit_identical_with_prof_on_and_off() {
    let _g = lock();
    prof::deactivate();
    prof::reset();
    let off = run_product(None);
    let on = run_product(Some(ProfConfig::default().with_dir(std::env::temp_dir())));
    assert!(prof::is_active(), "engine must install the profiler");

    // 2^2 * 3^2 * 4^2 at every party, profiled or not.
    for run in [&off, &on] {
        for out in &run.outputs {
            assert_eq!(out[0].to_canonical(), 576);
        }
    }
    // Deterministic accounting is bit-identical (wall time is measured and
    // excluded — it differs between any two runs, profiled or not).
    assert_eq!(off.stats.total.rounds, on.stats.total.rounds);
    assert_eq!(off.stats.total.messages, on.stats.total.messages);
    assert_eq!(off.stats.total.bytes, on.stats.total.bytes);
    let phases_off: Vec<&String> = off.stats.phases.keys().collect();
    let phases_on: Vec<&String> = on.stats.phases.keys().collect();
    assert_eq!(phases_off, phases_on);
    for (name, p_off) in &off.stats.phases {
        let p_on = &on.stats.phases[name];
        assert_eq!(p_off.rounds, p_on.rounds, "{name}");
        assert_eq!(p_off.messages, p_on.messages, "{name}");
        assert_eq!(p_off.bytes, p_on.bytes, "{name}");
    }
    prof::deactivate();
    prof::reset();
}

#[test]
fn profile_is_byte_deterministic_and_batching_matches_circuit() {
    let _g = lock();
    prof::deactivate();
    prof::reset();

    let dir = std::env::temp_dir().join(format!("sqm-prof-mpc-{}", std::process::id()));
    run_product(Some(ProfConfig::default().with_dir(&dir)));
    let first = prof::snapshot().expect("profiler installed");
    let (folded1, json1) = (prof::render_folded(&first), prof::render_json(&first));
    prof::deactivate();
    prof::reset();
    run_product(Some(ProfConfig::default().with_dir(&dir)));
    let second = prof::snapshot().expect("profiler installed");
    assert_eq!(folded1, prof::render_folded(&second));
    assert_eq!(json1, prof::render_json(&second));

    // The batching report eval_mpc attached agrees exactly with the
    // circuit's own invariants.
    let circ = product_circuit();
    let batching = second.batching.as_ref().expect("eval_mpc reports batching");
    assert_eq!(batching.level_widths, vec![3, 1, 1]);
    assert_eq!(batching.n_mul_gates, circ.n_mul_gates());
    assert_eq!(batching.mul_depth as u32, circ.mul_depth());
    assert_eq!(batching.n_parties, 3);
    // 5 muls one-per-round vs 3 batched rounds, 6 messages per round.
    assert_eq!(batching.messages_unbatched, 5 * 6);
    assert_eq!(batching.messages_batched, 3 * 6);

    // Attribution structure: per-layer mul widths (3 parties each record
    // the batch width), degree reductions with their field-mul bulk, the
    // setup inversions, and per-phase exchange traffic.
    let nodes = &second.nodes;
    assert_eq!(nodes["circuit;mul;layer0001"].work, 3 * 3);
    assert_eq!(nodes["circuit;mul;layer0002"].work, 3);
    assert_eq!(nodes["circuit;mul;layer0003"].work, 3);
    assert_eq!(nodes["circuit;gates;mul"].calls, 3 * 5);
    assert_eq!(nodes["engine;compute;reduce_degree"].work, 3 * (3 + 1 + 1));
    assert!(nodes.contains_key("engine;compute;reduce_degree;field_mul"));
    assert_eq!(nodes["engine;setup;field_inv"].work, 3);
    // The open phase is one all-to-all exchange: n(n-1) messages.
    assert_eq!(nodes["engine;open;exchange"].messages, 6);
    assert!(nodes.contains_key("engine;open;round0004"));
    // Wall time is collected in memory but never rendered.
    assert!(!json1.contains("wall"));
    prof::deactivate();
    prof::reset();
}

#[test]
fn additive_backend_records_under_additive_prefix() {
    let _g = lock();
    prof::deactivate();
    prof::reset();

    let dir = std::env::temp_dir().join(format!("sqm-prof-add-{}", std::process::id()));
    let cfg = MpcConfig::semi_honest(3)
        .with_latency(Duration::ZERO)
        .with_seed(44)
        .with_prof(Some(ProfConfig::default().with_dir(&dir)));
    let run = AdditiveEngine::new(cfg).run::<M61, _, _>(|ctx| {
        let x = ctx.share_input(
            0,
            (ctx.id == 0).then(|| vec![M61::from_u64(6); 2]).as_deref(),
            2,
        );
        let triples = ctx.dealer_triples(2);
        let z = ctx.mul_beaver(&x, &x.clone(), &triples);
        ctx.open(&z)
    });
    for out in run.outputs {
        assert!(out.iter().all(|v| v.to_canonical() == 36));
    }
    let snap = prof::snapshot().expect("profiler installed");
    let exchange = &snap.nodes["additive;default;exchange"];
    // share + mask-open + final open = 3 rounds per party.
    assert_eq!(exchange.calls, 3 * 3);
    assert_eq!(exchange.messages, run.stats.total.messages);
    assert_eq!(exchange.bytes, run.stats.total.bytes);
    assert!(snap.nodes.contains_key("additive;default;round0000"));
    assert!(!snap.nodes.keys().any(|k| k.starts_with("engine;")));
    prof::deactivate();
    prof::reset();
}
