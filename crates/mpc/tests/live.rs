//! Acceptance tests for live telemetry (`sqm_obs::live`) at the engine
//! level: the stall watchdog must attribute a seeded `net::fault` delay to
//! exactly the delayed party at the right round, a seeded crash must
//! produce both a typed `StallEvent` and a byte-deterministic
//! flight-recorder dump (golden file, `BLESS=1` to regenerate), and every
//! deterministic `RunStats` counter must be bit-identical with live
//! telemetry on or off.
//!
//! The live collector is process-global (like the metrics registry), so
//! these tests serialize on one mutex and never assert on cumulative
//! counters such as `runs_started`.

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Duration;

use sqm_field::{PrimeField, M61};
use sqm_mpc::{AdditiveEngine, FaultSpec, LiveConfig, MpcConfig, MpcEngine, TransportError};
use sqm_net::fault::schedule;
use sqm_obs::live;

/// Serializes the tests in this file: they share the process-global
/// collector, and a run beginning mid-way through another test's
/// assertions would mix aggregates.
static LIVE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LIVE_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn flight_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sqm-live-mpc-{}-{test}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The shared workload: party 0's secret, squared four times, opened.
/// Round structure: one input exchange (only party 0 sends real
/// messages), then all-to-all GRR reduction and open rounds.
fn squares_program(ctx: &mut sqm_mpc::PartyCtx<M61>) -> Vec<M61> {
    let x = ctx.share_input(
        0,
        (ctx.id == 0).then(|| vec![M61::from_u64(3)]).as_deref(),
        1,
    );
    let mut y = x.clone();
    for _ in 0..4 {
        y = ctx.mul(&y, &y);
    }
    ctx.open(&y)
}

#[test]
fn runstats_bit_identical_with_live_on_and_off() {
    let _g = lock();
    let cfg = |live: Option<LiveConfig>| {
        MpcConfig::semi_honest(4)
            .with_latency(Duration::ZERO)
            .with_seed(11)
            .with_live(live)
    };
    let off = MpcEngine::new(cfg(None)).run::<M61, _, _>(squares_program);
    let on_cfg = LiveConfig::default().with_flight_dir(flight_dir("bgw-bitident"));
    let on = MpcEngine::new(cfg(Some(on_cfg))).run::<M61, _, _>(squares_program);

    assert_eq!(off.outputs, on.outputs);
    assert_eq!(off.stats.total.rounds, on.stats.total.rounds);
    assert_eq!(off.stats.total.messages, on.stats.total.messages);
    assert_eq!(off.stats.total.bytes, on.stats.total.bytes);
    for ((name_a, a), (name_b, b)) in off.stats.phases.iter().zip(&on.stats.phases) {
        assert_eq!(name_a, name_b);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.bytes, b.bytes);
    }
}

#[test]
fn additive_runstats_bit_identical_with_live_on_and_off() {
    let _g = lock();
    let program = |ctx: &mut sqm_mpc::AdditiveCtx<M61>| {
        let v = vec![M61::from_i128(-5), M61::from_u64(40)];
        let shares = ctx.share_input(1, (ctx.id == 1).then_some(&v), 2);
        ctx.open(&shares)
    };
    let cfg = |live: Option<LiveConfig>| {
        MpcConfig::semi_honest(3)
            .with_latency(Duration::ZERO)
            .with_seed(12)
            .with_live(live)
    };
    let off = AdditiveEngine::new(cfg(None)).run::<M61, _, _>(program);
    let on_cfg = LiveConfig::default().with_flight_dir(flight_dir("additive-bitident"));
    let on = AdditiveEngine::new(cfg(Some(on_cfg))).run::<M61, _, _>(program);

    assert_eq!(off.outputs, on.outputs);
    assert_eq!(off.stats.total.rounds, on.stats.total.rounds);
    assert_eq!(off.stats.total.messages, on.stats.total.messages);
    assert_eq!(off.stats.total.bytes, on.stats.total.bytes);
}

const GOLDEN_CRASH_DUMP: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/flightrec_crash.jsonl"
);

#[test]
fn crash_fault_emits_stall_event_and_deterministic_flight_dump() {
    let _g = lock();
    let dir = flight_dir("crash");
    let seed = 9u64;
    let dump_path = dir.join(format!("flightrec_{seed}.jsonl"));
    let _ = std::fs::remove_file(&dump_path);

    let cfg = MpcConfig::semi_honest(4)
        .with_latency(Duration::ZERO)
        .with_seed(seed)
        .with_faults(Some(FaultSpec::seeded(1).with_crash(2, 1)))
        .with_live(Some(LiveConfig::default().with_flight_dir(&dir)));
    let err = MpcEngine::new(cfg)
        .try_run::<M61, _, _>(squares_program)
        .unwrap_err();
    assert_eq!(err, TransportError::Crashed { party: 2, round: 1 });

    // The watchdog surfaces the crash as a typed stall naming the party.
    let collector = live::collector().expect("run installed the collector");
    let stalls = collector.stalls();
    assert!(
        stalls
            .iter()
            .any(|s| s.party == 2 && s.round == 1 && s.kind == "crash"),
        "expected a crash stall for party 2 round 1, got {stalls:?}"
    );

    // The flight recorder dumped, and the dump is byte-deterministic for a
    // seeded failure (no wall-clock fields make it into the file).
    let dump = std::fs::read_to_string(&dump_path).expect("flight-recorder dump written");
    assert!(!dump.is_empty());
    assert!(!dump.contains("wall"), "dump must omit wall-clock fields");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(GOLDEN_CRASH_DUMP, &dump).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_CRASH_DUMP)
        .expect("golden missing: run with BLESS=1 to create tests/golden/flightrec_crash.jsonl");
    assert_eq!(
        dump, golden,
        "flight-recorder dump drifted from the golden file (BLESS=1 to re-bless)"
    );
}

#[test]
fn seeded_delay_flags_exactly_the_delayed_party_at_the_right_round() {
    let _g = lock();

    // Learn the workload's round count from a clean run (delay faults
    // never change the round/message structure).
    let probe = MpcEngine::new(
        MpcConfig::semi_honest(4)
            .with_latency(Duration::ZERO)
            .with_seed(13),
    )
    .run::<M61, _, _>(squares_program);
    let rounds = probe.stats.total.rounds;
    assert!(rounds >= 3, "workload too short to discriminate rounds");

    // The fault schedule is a pure function of (seed, from, to, round),
    // and the sender's injected sleep is the max over its real outgoing
    // links (all-to-all in every round except the input round, where only
    // party 0 sends). Scan for a schedule seed whose drop plan delays
    // exactly one link in the whole run: the sender of that link sleeps
    // `retransmit_timeout x attempts` >= 100 ms while every other round
    // costs zero, so a 50 ms threshold discriminates with no flake risk —
    // a dense uniform-delay plan would leave only millisecond gaps
    // between per-round maxima.
    let timeout = Duration::from_millis(100);
    let n = 4usize;
    let mut picked = None;
    'seeds: for fault_seed in 0..4096u64 {
        let spec = FaultSpec::seeded(fault_seed)
            .with_drop(0.03)
            .with_retransmit(timeout, 10);
        let mut delayed: Vec<(usize, u64)> = Vec::new();
        for r in 0..rounds {
            for s in 0..n {
                if r == 0 && s != 0 {
                    continue; // input round: only the owner sends
                }
                if (0..n)
                    .filter(|&t| t != s)
                    .any(|t| schedule(&spec, s, t, r).dropped_attempts > 0)
                {
                    delayed.push((s, r));
                    if delayed.len() > 1 {
                        continue 'seeds;
                    }
                }
            }
        }
        if let [(culprit, round)] = delayed[..] {
            picked = Some((spec, culprit, round));
            break;
        }
    }
    let (spec, culprit, round) =
        picked.expect("no schedule seed in 0..4096 delays exactly one link");
    let threshold = timeout / 2;

    let live_cfg = LiveConfig::default()
        .with_flight_dir(flight_dir("delay"))
        .with_stall_threshold(threshold);
    let run = MpcEngine::new(
        MpcConfig::semi_honest(4)
            .with_latency(Duration::ZERO)
            .with_seed(13)
            .with_faults(Some(spec))
            .with_live(Some(live_cfg)),
    )
    .run::<M61, _, _>(squares_program);
    assert_eq!(run.stats.total.rounds, rounds, "delays must not add rounds");

    let stalls = live::collector().expect("collector installed").stalls();
    assert!(
        !stalls.is_empty(),
        "the delayed round must trip the watchdog"
    );
    for s in &stalls {
        assert_eq!(
            (s.party, s.round),
            (culprit, round),
            "watchdog flagged {stalls:?}, expected party {culprit} at round {round}"
        );
        assert_eq!(s.kind, "slow_round");
    }
}
