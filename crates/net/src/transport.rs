//! The [`Transport`] abstraction: one synchronous full-mesh exchange per
//! round, pluggable backends, typed errors.
//!
//! The trait is extracted from the original in-process
//! `Endpoint::exchange`/`broadcast` API of `sqm-mpc`, with two changes:
//! exchanges return `Result<_, TransportError>` instead of panicking on a
//! closed link, and the endpoint tracks its own round counter so errors can
//! name the round they occurred in.

use sqm_field::PrimeField;
use sqm_obs::trace::NetEvent;

use crate::channel;
use crate::error::TransportError;
use crate::fault::{FaultSpec, FaultTransport};
use crate::tcp::{self, TcpOptions};
use crate::wire::TraceHeader;

/// How a backend packs one round's payload onto each link, and therefore
/// what one "message" means in the traffic accounting.
///
/// The mode never changes *which* field elements cross *which* link in
/// *which* round — rounds, bytes, and element counts are identical in both
/// modes — only how they are framed and counted.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FrameMode {
    /// One round-batched [`crate::wire::Frame`] per link per round carrying
    /// all of that round's elements; each non-empty frame counts as one
    /// message. This is the default and the batched engine's mode.
    #[default]
    PerRound,
    /// The per-element reference framing: every field element is its own
    /// message (the TCP backend physically sends one frame per element,
    /// terminated by an empty sentinel frame; the in-process backend counts
    /// elements). Kept as the differential-testing baseline for
    /// `MpcConfig`'s `Batching::Off`.
    PerElement,
}

/// The result of one successful synchronous round.
#[derive(Clone, Debug)]
pub struct RoundOutcome<F> {
    /// `incoming[i]` is the payload received from party `i` (the self slot
    /// holds the loop-back payload).
    pub incoming: Vec<Vec<F>>,
    /// `headers[i]` is the causal trace context party `i` stamped on its
    /// payload, if any. Always `n_parties()` entries; all `None` when the
    /// sender ran without tracing.
    pub headers: Vec<Option<TraceHeader>>,
    /// Messages this party sent. Under [`FrameMode::PerRound`] each
    /// non-empty payload to another party is one message (one frame);
    /// under [`FrameMode::PerElement`] each *element* of such a payload is
    /// one message.
    pub messages: u64,
    /// Payload bytes this party sent, at the canonical wire encoding
    /// ([`crate::wire::encoded_len`]); framing overhead is *not* counted
    /// and neither are trace headers, so the figure is identical across
    /// backends, identical with tracing on or off, and identical across
    /// [`FrameMode`]s.
    pub bytes: u64,
    /// Field elements this party sent in non-empty payloads to other
    /// parties. Identical across backends and [`FrameMode`]s.
    pub elems: u64,
}

/// One party's connection to the full mesh.
///
/// ## Contract
///
/// * SPMD discipline: every party calls [`exchange`](Transport::exchange)
///   the same number of times in the same program order; the `k`-th receive
///   from party `j` is the `k`-th send of party `j` (per-link FIFO, no
///   sequence numbers).
/// * `outgoing` has exactly `n_parties()` entries; the self slot is looped
///   back without touching the network.
/// * Empty payloads are "non-messages": they keep the lock-step structure
///   (a backend may still move sync bytes for them) but are excluded from
///   the message/byte accounting on every backend.
/// * On error the endpoint is left in an unspecified state; the protocol
///   run must be abandoned.
pub trait Transport<F: PrimeField>: Send {
    /// This party's index.
    fn id(&self) -> usize;

    /// Number of parties in the mesh.
    fn n_parties(&self) -> usize;

    /// Index of the next round (0-based; incremented by each successful
    /// [`exchange`](Transport::exchange)).
    fn round(&self) -> u64;

    /// One synchronous round: send `outgoing[j]` to each party `j` and
    /// receive one payload from every party.
    fn exchange(&mut self, outgoing: Vec<Vec<F>>) -> Result<RoundOutcome<F>, TransportError> {
        self.exchange_stamped(outgoing, None)
    }

    /// [`exchange`](Transport::exchange) with an optional causal trace
    /// context per destination: `headers[j]` is stamped on the payload to
    /// party `j` and surfaces in the receiver's
    /// [`RoundOutcome::headers`]. Headers are observability metadata only
    /// — they never enter the message/byte accounting.
    fn exchange_stamped(
        &mut self,
        outgoing: Vec<Vec<F>>,
        headers: Option<Vec<Option<TraceHeader>>>,
    ) -> Result<RoundOutcome<F>, TransportError>;

    /// Broadcast the same payload to every party and collect one from each
    /// (used for opening shares).
    fn broadcast(&mut self, payload: Vec<F>) -> Result<RoundOutcome<F>, TransportError> {
        let n = self.n_parties();
        self.exchange(vec![payload; n])
    }

    /// Drain transport-level events (injected faults, retransmits,
    /// reconnects) accumulated since the last call. Backends without
    /// incidents return nothing.
    fn drain_events(&mut self) -> Vec<NetEvent> {
        Vec::new()
    }

    /// Select the wire framing / message-accounting mode for subsequent
    /// exchanges (see [`FrameMode`]). Must be called at the same point in
    /// the SPMD program on every endpoint of the mesh, before any exchange.
    /// The default implementation ignores the request and stays on
    /// [`FrameMode::PerRound`].
    fn set_frame_mode(&mut self, _mode: FrameMode) {}
}

/// Which transport backend a protocol run uses.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum NetBackend {
    /// The in-process crossbeam channel mesh (the original simulated
    /// transport; zero behavior change vs. the pre-`sqm-net` code).
    #[default]
    InProcess,
    /// Length-prefixed TCP over localhost, one socket per ordered party
    /// pair, real bytes on the loopback interface.
    Tcp(TcpOptions),
}

impl NetBackend {
    /// TCP with default [`TcpOptions`].
    pub fn tcp() -> Self {
        NetBackend::Tcp(TcpOptions::default())
    }
}

/// Build a full mesh of `n` endpoints on the chosen backend, optionally
/// wrapped in the deterministic fault injector.
///
/// The returned endpoints are boxed so callers (the MPC engines) can hand
/// one to each party thread regardless of backend.
pub fn build_mesh<F: PrimeField>(
    n: usize,
    backend: &NetBackend,
    faults: Option<&FaultSpec>,
) -> Result<Vec<Box<dyn Transport<F>>>, TransportError> {
    let raw: Vec<Box<dyn Transport<F>>> = match backend {
        NetBackend::InProcess => channel::mesh::<F>(n)
            .into_iter()
            .map(|e| Box::new(e) as Box<dyn Transport<F>>)
            .collect(),
        NetBackend::Tcp(opts) => tcp::tcp_mesh::<F>(n, opts)?
            .into_iter()
            .map(|e| Box::new(e) as Box<dyn Transport<F>>)
            .collect(),
    };
    Ok(match faults {
        None => raw,
        Some(spec) => raw
            .into_iter()
            .map(|t| Box::new(FaultTransport::new(t, spec.clone())) as Box<dyn Transport<F>>)
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqm_field::M61;
    use std::thread;

    fn run_all<T: Send>(
        mut eps: Vec<Box<dyn Transport<M61>>>,
        f: impl Fn(&mut dyn Transport<M61>) -> T + Sync,
    ) -> Vec<T> {
        thread::scope(|s| {
            let handles: Vec<_> = eps
                .iter_mut()
                .map(|ep| s.spawn(|| f(ep.as_mut())))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    #[test]
    fn build_mesh_in_process_routes() {
        let eps = build_mesh::<M61>(3, &NetBackend::InProcess, None).unwrap();
        let results = run_all(eps, |ep| {
            let id = ep.id();
            let out: Vec<Vec<M61>> = (0..3)
                .map(|j| vec![M61::from_u64((10 * id + j) as u64)])
                .collect();
            ep.exchange(out).unwrap().incoming
        });
        for (j, incoming) in results.iter().enumerate() {
            for (i, payload) in incoming.iter().enumerate() {
                assert_eq!(payload, &vec![M61::from_u64((10 * i + j) as u64)]);
            }
        }
    }

    #[test]
    fn build_mesh_tcp_routes() {
        let eps = build_mesh::<M61>(3, &NetBackend::tcp(), None).unwrap();
        let results = run_all(eps, |ep| {
            let id = ep.id();
            let out: Vec<Vec<M61>> = (0..3)
                .map(|j| vec![M61::from_u64((10 * id + j) as u64)])
                .collect();
            ep.exchange(out).unwrap().incoming
        });
        for (j, incoming) in results.iter().enumerate() {
            for (i, payload) in incoming.iter().enumerate() {
                assert_eq!(payload, &vec![M61::from_u64((10 * i + j) as u64)]);
            }
        }
    }

    #[test]
    fn broadcast_defaults_to_exchange_of_clones() {
        let eps = build_mesh::<M61>(2, &NetBackend::InProcess, None).unwrap();
        let results = run_all(eps, |ep| {
            let payload = vec![M61::from_u64(ep.id() as u64 + 7)];
            ep.broadcast(payload).unwrap().incoming
        });
        for incoming in &results {
            assert_eq!(incoming[0], vec![M61::from_u64(7)]);
            assert_eq!(incoming[1], vec![M61::from_u64(8)]);
        }
    }
}
