//! Length-prefixed TCP transport over localhost.
//!
//! One socket per *ordered* party pair (`n * (n-1)` sockets total): the
//! stream accepted from party `i` carries only `i -> me` traffic, so
//! per-link FIFO plus SPMD discipline give the same no-sequence-number
//! guarantee as the in-process channel mesh.
//!
//! ## Framing
//!
//! Every transmission is one outer frame: a 4-byte little-endian length
//! prefix followed by a round-batched [`wire::Frame`] — the element count,
//! the versioned optional [`wire::TraceHeader`] (one byte when absent),
//! and the [`crate::wire`] encoding of the element vector.
//!
//! Under the default [`FrameMode::PerRound`], one frame per (pair, round)
//! carries *all* of that round's elements for the link. Empty payloads
//! still send a (count 0) frame — the lock-step structure needs one frame
//! per (pair, round) — but, like the channel backend, they are excluded
//! from the message/byte accounting, and accounted bytes are the
//! wire-encoded payload only (no frame or trace headers). This is what
//! makes `RunStats` message/byte counts *identical* across backends, and
//! identical with tracing on or off.
//!
//! Under [`FrameMode::PerElement`] (the differential-testing reference
//! framing) each element travels in its own single-element frame, the
//! causal header rides on the first frame of the sequence, and an empty
//! sentinel frame terminates the link's round. Bytes and element counts
//! are accounted identically to `PerRound`; only the message count (one
//! per element) and the physical frame count differ.
//!
//! ## Timeouts and reconnection
//!
//! Mesh construction retries each connection with bounded exponential
//! backoff ([`TcpOptions::connect_retries`], [`TcpOptions::initial_backoff`],
//! [`TcpOptions::max_backoff`]); reads honor [`TcpOptions::read_timeout`]
//! and surface [`TransportError::Timeout`]. EOF and broken pipes surface
//! as [`TransportError::Disconnected`] naming the peer and round.
//!
//! ## Deadlock avoidance
//!
//! All parties write their full round concurrently before reading; if
//! every payload exceeded the kernel socket buffers, blocking writes could
//! deadlock. Each exchange therefore performs its writes on a scoped
//! helper thread while the party thread reads — writes and reads make
//! progress independently, bounded buffers or not.

use std::io::{ErrorKind, Read, Write};
use std::marker::PhantomData;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use bytes::Bytes;
use sqm_field::PrimeField;
use sqm_obs::live;
use sqm_obs::metrics;
use sqm_obs::trace::NetEvent;

use crate::error::{TransportError, WireError};
use crate::transport::{FrameMode, RoundOutcome, Transport};
use crate::wire::{self, Frame, TraceHeader};

/// Read-side result of one exchange: per-sender payloads plus the optional
/// trace header decoded from each frame.
type ReadHalf<F> = Result<(Vec<Vec<F>>, Vec<Option<TraceHeader>>), TransportError>;

/// Hello preamble: magic, sender id, receiver id (validates pairing).
const HELLO_MAGIC: u32 = 0x5351_4D4E; // "SQMN"

/// Largest payload a frame may announce (1 GiB); guards against allocating
/// on a corrupt length prefix.
const MAX_FRAME_BYTES: usize = 1 << 30;

/// Tuning knobs for the loopback TCP backend.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TcpOptions {
    /// Per-attempt connection timeout.
    pub connect_timeout: Duration,
    /// Per-payload read timeout; must exceed the longest injected delay
    /// when composed with the fault wrapper.
    pub read_timeout: Duration,
    /// Additional connection attempts after the first (bounded
    /// exponential backoff between attempts).
    pub connect_retries: u32,
    /// Backoff before the first retry; doubled per retry.
    pub initial_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Set `TCP_NODELAY` (disable Nagle); keeps small MPC rounds fast.
    pub nodelay: bool,
}

impl Default for TcpOptions {
    fn default() -> Self {
        TcpOptions {
            connect_timeout: Duration::from_secs(1),
            read_timeout: Duration::from_secs(10),
            connect_retries: 5,
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
            nodelay: true,
        }
    }
}

/// One party's sockets into the TCP mesh.
pub struct TcpEndpoint<F: PrimeField> {
    id: usize,
    n: usize,
    round: u64,
    frame_mode: FrameMode,
    read_timeout: Duration,
    /// `writers[j]` carries `me -> j` traffic (`None` at the self slot).
    writers: Vec<Option<TcpStream>>,
    /// `readers[i]` carries `i -> me` traffic (`None` at the self slot).
    readers: Vec<Option<TcpStream>>,
    events: Vec<NetEvent>,
    _field: PhantomData<F>,
}

fn io_error(party: usize, round: u64, context: &str, e: &std::io::Error) -> TransportError {
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => TransportError::Timeout {
            party,
            round,
            after: Duration::ZERO, // filled by callers that know the timeout
        },
        ErrorKind::UnexpectedEof | ErrorKind::BrokenPipe | ErrorKind::ConnectionReset => {
            TransportError::Disconnected { party, round }
        }
        _ => TransportError::Io {
            party,
            round,
            detail: format!("{context}: {e}"),
        },
    }
}

fn write_frame(
    stream: &mut TcpStream,
    payload: &[u8],
    peer: usize,
    round: u64,
) -> Result<(), TransportError> {
    let len = u32::try_from(payload.len()).map_err(|_| TransportError::Io {
        party: peer,
        round,
        detail: format!("payload of {} bytes exceeds u32 framing", payload.len()),
    })?;
    stream
        .write_all(&len.to_le_bytes())
        .and_then(|()| stream.write_all(payload))
        .map_err(|e| io_error(peer, round, "write frame", &e))
}

fn read_frame(
    stream: &mut TcpStream,
    peer: usize,
    round: u64,
    read_timeout: Duration,
) -> Result<Bytes, TransportError> {
    let fill_timeout = |err: TransportError| match err {
        TransportError::Timeout { party, round, .. } => TransportError::Timeout {
            party,
            round,
            after: read_timeout,
        },
        other => other,
    };
    let mut header = [0u8; 4];
    stream
        .read_exact(&mut header)
        .map_err(|e| fill_timeout(io_error(peer, round, "read frame header", &e)))?;
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(TransportError::Wire {
            party: peer,
            round,
            source: WireError::OversizedFrame {
                len,
                max: MAX_FRAME_BYTES,
            },
        });
    }
    let mut payload = vec![0u8; len];
    stream
        .read_exact(&mut payload)
        .map_err(|e| fill_timeout(io_error(peer, round, "read frame payload", &e)))?;
    Ok(Bytes::from(payload))
}

/// Connect to `addr` with bounded exponential backoff, recording each
/// reconnect attempt in the metrics registry (`net.tcp.reconnects`).
pub fn connect_with_backoff(
    addr: SocketAddr,
    peer: usize,
    opts: &TcpOptions,
) -> Result<TcpStream, TransportError> {
    let mut backoff = opts.initial_backoff;
    let mut last_err = String::from("no attempt made");
    let attempts = opts.connect_retries.saturating_add(1);
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(opts.max_backoff);
            metrics::counter_add("net.tcp.reconnects", 1);
        }
        match TcpStream::connect_timeout(&addr, opts.connect_timeout) {
            Ok(stream) => return Ok(stream),
            Err(e) => last_err = e.to_string(),
        }
    }
    Err(TransportError::ConnectFailed {
        party: peer,
        attempts,
        detail: last_err,
    })
}

/// Build a full TCP mesh of `n` endpoints on the loopback interface.
///
/// Runs single-threaded on the caller: each `connect` completes against the
/// peer listener's backlog before the matching `accept` is issued, so the
/// sequential connect-then-accept order cannot deadlock.
pub fn tcp_mesh<F: PrimeField>(
    n: usize,
    opts: &TcpOptions,
) -> Result<Vec<TcpEndpoint<F>>, TransportError> {
    assert!(n >= 1);
    let listeners: Vec<TcpListener> = (0..n)
        .map(|party| {
            TcpListener::bind("127.0.0.1:0").map_err(|e| TransportError::Io {
                party,
                round: 0,
                detail: format!("bind listener: {e}"),
            })
        })
        .collect::<Result<_, _>>()?;
    let addrs: Vec<SocketAddr> = listeners
        .iter()
        .enumerate()
        .map(|(party, l)| {
            l.local_addr().map_err(|e| TransportError::Io {
                party,
                round: 0,
                detail: format!("listener local_addr: {e}"),
            })
        })
        .collect::<Result<_, _>>()?;

    let mut writers: Vec<Vec<Option<TcpStream>>> =
        (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
    let mut readers: Vec<Vec<Option<TcpStream>>> =
        (0..n).map(|_| (0..n).map(|_| None).collect()).collect();

    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            // i dials j.
            let mut out = connect_with_backoff(addrs[j], j, opts)?;
            out.set_nodelay(opts.nodelay)
                .map_err(|e| io_error(j, 0, "set_nodelay", &e))?;
            let mut hello = [0u8; 12];
            hello[0..4].copy_from_slice(&HELLO_MAGIC.to_le_bytes());
            hello[4..8].copy_from_slice(&(i as u32).to_le_bytes());
            hello[8..12].copy_from_slice(&(j as u32).to_le_bytes());
            out.write_all(&hello)
                .map_err(|e| io_error(j, 0, "write hello", &e))?;
            // j accepts and validates the preamble.
            let (mut accepted, _) = listeners[j].accept().map_err(|e| TransportError::Io {
                party: j,
                round: 0,
                detail: format!("accept: {e}"),
            })?;
            let mut got = [0u8; 12];
            accepted
                .read_exact(&mut got)
                .map_err(|e| io_error(i, 0, "read hello", &e))?;
            let magic = u32::from_le_bytes(got[0..4].try_into().unwrap());
            let from = u32::from_le_bytes(got[4..8].try_into().unwrap()) as usize;
            let to = u32::from_le_bytes(got[8..12].try_into().unwrap()) as usize;
            if magic != HELLO_MAGIC || from != i || to != j {
                return Err(TransportError::Io {
                    party: i,
                    round: 0,
                    detail: format!(
                        "bad hello on link {i}->{j}: magic {magic:#x}, from {from}, to {to}"
                    ),
                });
            }
            accepted
                .set_read_timeout(Some(opts.read_timeout))
                .map_err(|e| io_error(i, 0, "set_read_timeout", &e))?;
            writers[i][j] = Some(out);
            readers[j][i] = Some(accepted);
        }
    }

    Ok(writers
        .into_iter()
        .zip(readers)
        .enumerate()
        .map(|(id, (w, r))| TcpEndpoint {
            id,
            n,
            round: 0,
            frame_mode: FrameMode::default(),
            read_timeout: opts.read_timeout,
            writers: w,
            readers: r,
            events: Vec::new(),
            _field: PhantomData,
        })
        .collect())
}

impl<F: PrimeField> Transport<F> for TcpEndpoint<F> {
    fn id(&self) -> usize {
        self.id
    }

    fn n_parties(&self) -> usize {
        self.n
    }

    fn round(&self) -> u64 {
        self.round
    }

    fn exchange_stamped(
        &mut self,
        mut outgoing: Vec<Vec<F>>,
        headers: Option<Vec<Option<TraceHeader>>>,
    ) -> Result<RoundOutcome<F>, TransportError> {
        let n = self.n;
        assert_eq!(outgoing.len(), n, "exchange: need one payload per party");
        if let Some(hs) = &headers {
            assert_eq!(hs.len(), n, "exchange: need one header slot per party");
        }
        let id = self.id;
        let round = self.round;
        let read_timeout = self.read_timeout;
        let frame_mode = self.frame_mode;

        // Encode everything up front; account only real messages, and only
        // their element bytes — the trace header and frame prefixes ride
        // inside the frame but never enter the byte accounting.
        let mut messages = 0u64;
        let mut bytes = 0u64;
        let mut elems = 0u64;
        let loopback = std::mem::take(&mut outgoing[id]);
        let loopback_header = headers.as_ref().and_then(|hs| hs[id]);
        let frames: Vec<Option<Vec<Bytes>>> = outgoing
            .iter()
            .enumerate()
            .map(|(j, payload)| {
                if j == id {
                    return None;
                }
                if !payload.is_empty() {
                    messages += match frame_mode {
                        FrameMode::PerRound => 1,
                        FrameMode::PerElement => payload.len() as u64,
                    };
                    bytes += wire::encoded_len::<F>(payload.len());
                    elems += payload.len() as u64;
                }
                let header = headers.as_ref().and_then(|hs| hs[j]);
                let sequence = match frame_mode {
                    // One round-batched frame with all of the link's
                    // elements for this round.
                    FrameMode::PerRound => vec![Frame::<F>::encode(payload, header.as_ref())],
                    // One single-element frame per element, the causal
                    // header on the first frame of the sequence, closed by
                    // an empty sentinel frame (which carries the header
                    // itself when the payload is empty).
                    FrameMode::PerElement => {
                        let mut sequence = Vec::with_capacity(payload.len() + 1);
                        for (k, v) in payload.iter().enumerate() {
                            let h = if k == 0 { header.as_ref() } else { None };
                            sequence.push(Frame::<F>::encode(std::slice::from_ref(v), h));
                        }
                        let sentinel_header = if payload.is_empty() {
                            header.as_ref()
                        } else {
                            None
                        };
                        sequence.push(Frame::<F>::encode(&[], sentinel_header));
                        sequence
                    }
                };
                Some(sequence)
            })
            .collect();
        let frames_sent: u64 = frames
            .iter()
            .flatten()
            .map(|sequence| sequence.len() as u64)
            .sum();

        let writers = &mut self.writers;
        let readers = &mut self.readers;
        // Per-link latency histograms are priced at one `is_enabled` load
        // per exchange, not per frame; the timing itself only runs when the
        // registry is on. Live telemetry shares the same measurements and
        // publishes per-link send/recv events out-of-band of the byte
        // accounting.
        let timing = metrics::is_enabled();
        let live_on = live::is_active();
        let (write_result, read_result) = std::thread::scope(|s| {
            let writer = s.spawn(move || -> Result<(), TransportError> {
                for (j, sequence) in frames.iter().enumerate() {
                    let Some(sequence) = sequence else { continue };
                    let stream = writers[j].as_mut().expect("writer socket present");
                    let t0 = (timing || live_on).then(Instant::now);
                    for frame in sequence {
                        write_frame(stream, frame.as_ref(), j, round)?;
                    }
                    if let Some(t0) = t0 {
                        let elapsed = t0.elapsed();
                        if timing {
                            metrics::histogram_record(
                                &format!("net.tcp.send_ns.p{id}_to_p{j}"),
                                elapsed.as_nanos() as f64,
                            );
                        }
                        if live_on {
                            live::publish(live::LiveEvent::link(id, round, j, true, elapsed));
                        }
                    }
                }
                Ok(())
            });
            let read = (|| -> ReadHalf<F> {
                let mut incoming: Vec<Vec<F>> = (0..n).map(|_| Vec::new()).collect();
                let mut in_headers: Vec<Option<TraceHeader>> = vec![None; n];
                for (i, reader) in readers.iter_mut().enumerate() {
                    let Some(stream) = reader.as_mut() else {
                        continue;
                    };
                    let t0 = (timing || live_on).then(Instant::now);
                    let wire_err = |source| TransportError::Wire {
                        party: i,
                        round,
                        source,
                    };
                    match frame_mode {
                        FrameMode::PerRound => {
                            let raw = read_frame(stream, i, round, read_timeout)?;
                            let frame = Frame::<F>::decode(raw).map_err(wire_err)?;
                            in_headers[i] = frame.header;
                            incoming[i] = frame.elements;
                        }
                        FrameMode::PerElement => {
                            // Accumulate single-element frames until the
                            // empty sentinel closes the link's round.
                            let mut first = true;
                            loop {
                                let raw = read_frame(stream, i, round, read_timeout)?;
                                let frame = Frame::<F>::decode(raw).map_err(&wire_err)?;
                                if first {
                                    in_headers[i] = frame.header;
                                    first = false;
                                }
                                if frame.elements.is_empty() {
                                    break;
                                }
                                incoming[i].extend(frame.elements);
                            }
                        }
                    }
                    if let Some(t0) = t0 {
                        let elapsed = t0.elapsed();
                        if timing {
                            metrics::histogram_record(
                                &format!("net.tcp.recv_ns.p{i}_to_p{id}"),
                                elapsed.as_nanos() as f64,
                            );
                        }
                        if live_on {
                            live::publish(live::LiveEvent::link(id, round, i, false, elapsed));
                        }
                    }
                }
                Ok((incoming, in_headers))
            })();
            (writer.join().expect("tcp writer thread panicked"), read)
        });

        // Prefer the read-side error: it attributes the failure to the peer
        // whose data never arrived, which is the actionable diagnosis.
        let (mut incoming, mut in_headers) = read_result?;
        write_result?;
        incoming[id] = loopback;
        in_headers[id] = loopback_header;

        metrics::counter_add("net.tcp.frames_sent", frames_sent);
        metrics::counter_add("net.tcp.payload_bytes_sent", bytes);
        self.round += 1;
        Ok(RoundOutcome {
            incoming,
            headers: in_headers,
            messages,
            bytes,
            elems,
        })
    }

    fn drain_events(&mut self) -> Vec<NetEvent> {
        std::mem::take(&mut self.events)
    }

    fn set_frame_mode(&mut self, mode: FrameMode) {
        self.frame_mode = mode;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqm_field::{M127, M61};
    use std::thread;

    #[test]
    fn tcp_mesh_routes_and_counts_like_channel() {
        let mut eps = tcp_mesh::<M61>(3, &TcpOptions::default()).unwrap();
        let results: Vec<(Vec<Vec<M61>>, u64, u64)> = thread::scope(|s| {
            let handles: Vec<_> = eps
                .iter_mut()
                .map(|ep| {
                    s.spawn(move || {
                        let id = Transport::<M61>::id(ep);
                        let out: Vec<Vec<M61>> = (0..3)
                            .map(|j| {
                                if j == 2 {
                                    vec![] // party 2 gets a non-message
                                } else {
                                    vec![M61::from_u64((10 * id + j) as u64); 4]
                                }
                            })
                            .collect();
                        let o = ep.exchange(out).unwrap();
                        (o.incoming, o.messages, o.bytes)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (j, (incoming, messages, bytes)) in results.iter().enumerate() {
            // Every party sent 4-element payloads to parties 0 and 1 only.
            for (i, payload) in incoming.iter().enumerate() {
                if j == 2 {
                    assert!(payload.is_empty(), "party 2 expects non-messages");
                } else {
                    assert_eq!(payload, &vec![M61::from_u64((10 * i + j) as u64); 4]);
                }
            }
            // Sender-side accounting: each party sends to {0,1} \ {self}.
            let real_destinations = [0usize, 1].iter().filter(|&&d| d != j).count() as u64;
            assert_eq!(*messages, real_destinations);
            assert_eq!(*bytes, real_destinations * 4 * 8);
        }
    }

    #[test]
    fn tcp_roundtrips_m127_and_preserves_fifo() {
        let mut eps = tcp_mesh::<M127>(2, &TcpOptions::default()).unwrap();
        thread::scope(|s| {
            let mut it = eps.iter_mut();
            let a = it.next().unwrap();
            let b = it.next().unwrap();
            s.spawn(move || {
                for round in 0..5u64 {
                    let v = M127::from_u128(u128::from(round) << 80);
                    let incoming = a.exchange(vec![vec![], vec![v]]).unwrap().incoming;
                    assert_eq!(incoming[1], vec![M127::from_u128(round as u128 + 1)]);
                }
            });
            s.spawn(move || {
                for round in 0..5u64 {
                    let incoming = b
                        .exchange(vec![vec![M127::from_u128(round as u128 + 1)], vec![]])
                        .unwrap()
                        .incoming;
                    assert_eq!(incoming[0], vec![M127::from_u128(u128::from(round) << 80)]);
                }
            });
        });
    }

    #[test]
    fn trace_headers_cross_the_socket() {
        let mut eps = tcp_mesh::<M61>(2, &TcpOptions::default()).unwrap();
        let results: Vec<RoundOutcome<M61>> = thread::scope(|s| {
            let handles: Vec<_> = eps
                .iter_mut()
                .map(|ep| {
                    s.spawn(move || {
                        let id = Transport::<M61>::id(ep);
                        let headers: Vec<Option<TraceHeader>> = (0..2)
                            .map(|j| {
                                (j != id).then_some(TraceHeader {
                                    run_id: 11,
                                    party: id as u32,
                                    round: 0,
                                    link_seq: 3,
                                    lamport: 10 + id as u64,
                                })
                            })
                            .collect();
                        ep.exchange_stamped(vec![vec![M61::ONE]; 2], Some(headers))
                            .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (me, out) in results.iter().enumerate() {
            let peer = 1 - me;
            let h = out.headers[peer].expect("peer header over tcp");
            assert_eq!(h.run_id, 11);
            assert_eq!(h.party, peer as u32);
            assert_eq!(h.link_seq, 3);
            assert_eq!(h.lamport, 10 + peer as u64);
            assert_eq!(out.headers[me], None);
            // Header bytes never enter the accounting.
            assert_eq!(out.bytes, 8);
        }
    }

    #[test]
    fn per_element_mode_same_payloads_same_bytes_more_messages() {
        metrics::set_enabled(false);
        let run = |mode: FrameMode| -> Vec<(Vec<Vec<M61>>, u64, u64, u64)> {
            let mut eps = tcp_mesh::<M61>(3, &TcpOptions::default()).unwrap();
            for ep in eps.iter_mut() {
                Transport::<M61>::set_frame_mode(ep, mode);
            }
            thread::scope(|s| {
                let handles: Vec<_> = eps
                    .iter_mut()
                    .map(|ep| {
                        s.spawn(move || {
                            let id = Transport::<M61>::id(ep);
                            let out: Vec<Vec<M61>> = (0..3)
                                .map(|j| {
                                    if j == 2 {
                                        vec![] // party 2 gets a non-message
                                    } else {
                                        vec![M61::from_u64((10 * id + j) as u64); 4]
                                    }
                                })
                                .collect();
                            let o = ep.exchange(out).unwrap();
                            (o.incoming, o.messages, o.bytes, o.elems)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
        };
        let batched = run(FrameMode::PerRound);
        let reference = run(FrameMode::PerElement);
        for (j, (b, r)) in batched.iter().zip(&reference).enumerate() {
            // Identical payloads, bytes, and element counts in both modes.
            assert_eq!(b.0, r.0, "party {j} incoming differs across modes");
            assert_eq!(b.2, r.2, "party {j} bytes differ across modes");
            assert_eq!(b.3, r.3, "party {j} elems differ across modes");
            // PerRound: one message per non-empty link; PerElement: one
            // per element (4 per non-empty link here).
            let real_destinations = [0usize, 1].iter().filter(|&&d| d != j).count() as u64;
            assert_eq!(b.1, real_destinations);
            assert_eq!(r.1, real_destinations * 4);
        }
    }

    #[test]
    fn per_element_mode_carries_trace_headers() {
        let mut eps = tcp_mesh::<M61>(2, &TcpOptions::default()).unwrap();
        for ep in eps.iter_mut() {
            Transport::<M61>::set_frame_mode(ep, FrameMode::PerElement);
        }
        let results: Vec<RoundOutcome<M61>> = thread::scope(|s| {
            let handles: Vec<_> = eps
                .iter_mut()
                .map(|ep| {
                    s.spawn(move || {
                        let id = Transport::<M61>::id(ep);
                        let headers: Vec<Option<TraceHeader>> = (0..2)
                            .map(|j| {
                                (j != id).then_some(TraceHeader {
                                    run_id: 21,
                                    party: id as u32,
                                    round: 0,
                                    link_seq: 0,
                                    lamport: 5 + id as u64,
                                })
                            })
                            .collect();
                        // Party 0 sends three elements, party 1 sends none:
                        // the header must survive both the multi-frame and
                        // the sentinel-only sequences.
                        let payload = if id == 0 { vec![M61::ONE; 3] } else { vec![] };
                        let out: Vec<Vec<M61>> = (0..2)
                            .map(|j| if j == id { vec![] } else { payload.clone() })
                            .collect();
                        ep.exchange_stamped(out, Some(headers)).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (me, out) in results.iter().enumerate() {
            let peer = 1 - me;
            let h = out.headers[peer].expect("peer header in per-element mode");
            assert_eq!(h.run_id, 21);
            assert_eq!(h.party, peer as u32);
            assert_eq!(h.lamport, 5 + peer as u64);
            assert_eq!(out.headers[me], None);
        }
        assert_eq!(results[0].incoming[1], vec![]);
        assert_eq!(results[1].incoming[0], vec![M61::ONE; 3]);
    }

    #[test]
    fn dropped_tcp_peer_yields_disconnected() {
        let mut eps = tcp_mesh::<M61>(2, &TcpOptions::default()).unwrap();
        drop(eps.remove(1));
        let err = eps[0].exchange(vec![vec![], vec![M61::ONE]]).unwrap_err();
        assert_eq!(err.party(), 1);
        assert!(
            matches!(err, TransportError::Disconnected { .. }),
            "expected Disconnected, got {err:?}"
        );
    }

    #[test]
    fn read_timeout_names_party_and_round() {
        let opts = TcpOptions {
            read_timeout: Duration::from_millis(50),
            ..TcpOptions::default()
        };
        let mut eps = tcp_mesh::<M61>(2, &opts).unwrap();
        let silent = eps.remove(1);
        // Party 0 exchanges; party 1 never sends, so the read times out.
        let err = eps[0].exchange(vec![vec![], vec![M61::ONE]]).unwrap_err();
        match err {
            TransportError::Timeout {
                party,
                round,
                after,
            } => {
                assert_eq!(party, 1);
                assert_eq!(round, 0);
                assert_eq!(after, Duration::from_millis(50));
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
        // Keep party 1's endpoint alive until after the timeout fired.
        drop(silent);
    }

    #[test]
    fn per_link_latency_histograms_recorded_when_metrics_on() {
        let mut eps = tcp_mesh::<M61>(2, &TcpOptions::default()).unwrap();
        metrics::set_enabled(true);
        thread::scope(|s| {
            for ep in eps.iter_mut() {
                s.spawn(move || {
                    let id = Transport::<M61>::id(ep);
                    let out: Vec<Vec<M61>> = (0..2)
                        .map(|j| {
                            if j == id {
                                vec![]
                            } else {
                                vec![M61::from_u64(7); 3]
                            }
                        })
                        .collect();
                    ep.exchange(out).unwrap();
                });
            }
        });
        metrics::set_enabled(false);
        let snap = metrics::snapshot();
        for name in [
            "net.tcp.send_ns.p0_to_p1",
            "net.tcp.send_ns.p1_to_p0",
            "net.tcp.recv_ns.p0_to_p1",
            "net.tcp.recv_ns.p1_to_p0",
        ] {
            let h = snap
                .histograms
                .get(name)
                .unwrap_or_else(|| panic!("missing histogram {name}"));
            assert!(h.count >= 1, "{name} recorded no samples");
            assert!(h.min >= 0.0);
        }
    }

    #[test]
    fn connect_backoff_gives_typed_error_on_dead_port() {
        // Bind-then-drop guarantees an unused port.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let opts = TcpOptions {
            connect_timeout: Duration::from_millis(100),
            connect_retries: 2,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            ..TcpOptions::default()
        };
        let err = connect_with_backoff(addr, 3, &opts).unwrap_err();
        match err {
            TransportError::ConnectFailed {
                party, attempts, ..
            } => {
                assert_eq!(party, 3);
                assert_eq!(attempts, 3);
            }
            other => panic!("expected ConnectFailed, got {other:?}"),
        }
    }
}
