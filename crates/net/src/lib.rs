//! # sqm-net — pluggable party-to-party transport
//!
//! The paper's timing tables (II, IV, V) come from a *simulated* network
//! that charges 0.1 s per message hop. This crate makes the transport under
//! that simulation pluggable and real:
//!
//! * [`transport::Transport`] — the synchronous full-mesh exchange trait
//!   extracted from the original in-process `Endpoint` API, returning
//!   `Result<_, TransportError>` instead of panicking;
//! * [`channel`] — the original crossbeam in-process mesh, refactored to
//!   implement the trait with zero behavior change (identical routing,
//!   FIFO, and message/byte accounting);
//! * [`tcp`] — a length-prefixed TCP backend over localhost: one socket
//!   per ordered party pair, payloads serialized with [`wire`], per-link
//!   connect/read timeouts, bounded exponential-backoff reconnect;
//! * [`fault`] — a deterministic seed-driven fault injector composable
//!   over either backend: per-link delay distributions, message drop with
//!   retransmit-on-timeout, single-party crash mid-round;
//! * [`error`] — typed failures naming the offending party and round;
//! * [`wire`] — the canonical little-endian encoding (moved here from
//!   `sqm-mpc`, which re-exports it), with a `Result`-returning decoder
//!   fit for bytes that arrive from a real socket.
//!
//! The MPC engines select a backend via [`NetBackend`] and build their
//! mesh with [`build_mesh`]; everything above the transport (BGW circuits,
//! VFL protocols, DP noise) is backend-agnostic, and message/byte counts
//! are identical across backends by construction.

pub mod channel;
pub mod error;
pub mod fault;
pub mod tcp;
pub mod transport;
pub mod wire;

pub use error::{TransportError, WireError};
pub use fault::{CrashPoint, FaultSpec, FaultTransport, LinkFault};
pub use tcp::{TcpEndpoint, TcpOptions};
pub use transport::{build_mesh, FrameMode, NetBackend, RoundOutcome, Transport};
pub use wire::{Frame, TraceHeader};

pub use channel::ChannelEndpoint;
