//! Full-mesh in-process transport between party threads.
//!
//! One unbounded crossbeam channel per ordered party pair. FIFO order per
//! pair plus the SPMD (same program order at every party) discipline of the
//! engine guarantee that the `k`-th receive from party `j` is the `k`-th
//! send of party `j` — no sequence numbers required.
//!
//! This is the original `sqm-mpc` simulated transport, refactored behind
//! the [`Transport`] trait with one behavioral difference: a link whose
//! peer endpoint has been dropped yields
//! [`TransportError::Disconnected`] instead of panicking.

use crossbeam::channel::{unbounded, Receiver, Sender};
use sqm_field::PrimeField;

use crate::error::TransportError;
use crate::transport::{FrameMode, RoundOutcome, Transport};
use crate::wire::TraceHeader;

/// The payload of one hop: a vector of field elements (possibly empty —
/// empty messages are "non-messages" and are not counted as traffic) plus
/// the sender's optional causal trace context.
type Payload<F> = (Vec<F>, Option<TraceHeader>);

/// One party's view of the in-process mesh.
pub struct ChannelEndpoint<F: PrimeField> {
    id: usize,
    round: u64,
    frame_mode: FrameMode,
    /// `senders[j]` delivers to party `j`'s `receivers[self.id]`.
    senders: Vec<Sender<Payload<F>>>,
    /// `receivers[i]` yields messages from party `i`.
    receivers: Vec<Receiver<Payload<F>>>,
}

impl<F: PrimeField> Transport<F> for ChannelEndpoint<F> {
    fn id(&self) -> usize {
        self.id
    }

    fn n_parties(&self) -> usize {
        self.senders.len()
    }

    fn round(&self) -> u64 {
        self.round
    }

    fn exchange_stamped(
        &mut self,
        outgoing: Vec<Vec<F>>,
        headers: Option<Vec<Option<TraceHeader>>>,
    ) -> Result<RoundOutcome<F>, TransportError> {
        let n = self.n_parties();
        assert_eq!(outgoing.len(), n, "exchange: need one payload per party");
        if let Some(hs) = &headers {
            assert_eq!(hs.len(), n, "exchange: need one header slot per party");
        }
        let round = self.round;
        let mut messages = 0u64;
        let mut bytes = 0u64;
        let mut elems = 0u64;
        for (j, payload) in outgoing.into_iter().enumerate() {
            if j != self.id && !payload.is_empty() {
                // The in-process backend moves typed values, so the frame
                // mode only changes the accounting: one message per frame
                // (PerRound) vs one per element (PerElement).
                messages += match self.frame_mode {
                    FrameMode::PerRound => 1,
                    FrameMode::PerElement => payload.len() as u64,
                };
                bytes += crate::wire::encoded_len::<F>(payload.len());
                elems += payload.len() as u64;
            }
            let header = headers.as_ref().and_then(|hs| hs[j]);
            self.senders[j]
                .send((payload, header))
                .map_err(|_| TransportError::Disconnected { party: j, round })?;
        }
        let mut incoming = Vec::with_capacity(n);
        let mut in_headers = Vec::with_capacity(n);
        for i in 0..n {
            let (payload, header) = self.receivers[i]
                .recv()
                .map_err(|_| TransportError::Disconnected { party: i, round })?;
            incoming.push(payload);
            in_headers.push(header);
        }
        self.round += 1;
        Ok(RoundOutcome {
            incoming,
            headers: in_headers,
            messages,
            bytes,
            elems,
        })
    }

    fn set_frame_mode(&mut self, mode: FrameMode) {
        self.frame_mode = mode;
    }
}

/// Build a full mesh of `n` in-process endpoints.
pub fn mesh<F: PrimeField>(n: usize) -> Vec<ChannelEndpoint<F>> {
    assert!(n >= 1);
    // channels[i][j]: the channel from party i to party j.
    let mut txs: Vec<Vec<Option<Sender<Payload<F>>>>> =
        (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
    let mut rxs: Vec<Vec<Option<Receiver<Payload<F>>>>> =
        (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
    for (i, tx_row) in txs.iter_mut().enumerate() {
        for (j, tx) in tx_row.iter_mut().enumerate() {
            let (s, r) = unbounded();
            *tx = Some(s);
            rxs[j][i] = Some(r);
        }
        let _ = i;
    }
    txs.into_iter()
        .zip(rxs)
        .enumerate()
        .map(|(id, (tx_row, rx_row))| ChannelEndpoint {
            id,
            round: 0,
            frame_mode: FrameMode::default(),
            senders: tx_row.into_iter().map(Option::unwrap).collect(),
            receivers: rx_row.into_iter().map(Option::unwrap).collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqm_field::M61;
    use std::thread;

    #[test]
    fn exchange_routes_correctly() {
        let mut endpoints = mesh::<M61>(3);
        let results: Vec<Vec<Vec<M61>>> = thread::scope(|s| {
            let handles: Vec<_> = endpoints
                .iter_mut()
                .map(|ep| {
                    s.spawn(move || {
                        // Party i sends value 10*i + j to party j.
                        let out: Vec<Vec<M61>> = (0..3)
                            .map(|j| vec![M61::from_u64((10 * ep.id() + j) as u64)])
                            .collect();
                        ep.exchange(out).unwrap().incoming
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Party j receives from party i the value 10*i + j.
        for (j, incoming) in results.iter().enumerate() {
            for (i, payload) in incoming.iter().enumerate() {
                assert_eq!(payload, &vec![M61::from_u64((10 * i + j) as u64)]);
            }
        }
    }

    #[test]
    fn traffic_counts_exclude_loopback_and_empties() {
        let mut endpoints = mesh::<M61>(2);
        let (counts_a, counts_b) = thread::scope(|s| {
            let mut it = endpoints.iter_mut();
            let a = it.next().unwrap();
            let b = it.next().unwrap();
            let ha = s.spawn(move || {
                let out = a
                    .exchange(vec![vec![M61::ONE; 5], vec![M61::ONE; 3]])
                    .unwrap();
                (out.messages, out.bytes)
            });
            let hb = s.spawn(move || {
                let out = b.exchange(vec![vec![], vec![M61::ONE]]).unwrap();
                (out.messages, out.bytes)
            });
            (ha.join().unwrap(), hb.join().unwrap())
        });
        // A sent 3 elements to B (24 bytes); loop-back of 5 not counted.
        assert_eq!(counts_a, (1, 24));
        // B sent nothing to A (empty), loop-back of 1 not counted.
        assert_eq!(counts_b, (0, 0));
    }

    #[test]
    fn per_element_mode_counts_elements_as_messages() {
        let mut endpoints = mesh::<M61>(2);
        for ep in endpoints.iter_mut() {
            Transport::<M61>::set_frame_mode(ep, FrameMode::PerElement);
        }
        let (counts_a, counts_b) = thread::scope(|s| {
            let mut it = endpoints.iter_mut();
            let a = it.next().unwrap();
            let b = it.next().unwrap();
            let ha = s.spawn(move || {
                let out = a
                    .exchange(vec![vec![M61::ONE; 5], vec![M61::ONE; 3]])
                    .unwrap();
                (out.messages, out.bytes, out.elems)
            });
            let hb = s.spawn(move || {
                let out = b.exchange(vec![vec![], vec![M61::ONE]]).unwrap();
                (out.messages, out.bytes, out.elems)
            });
            (ha.join().unwrap(), hb.join().unwrap())
        });
        // Same bytes and elems as the batched mode, but each element is
        // its own message.
        assert_eq!(counts_a, (3, 24, 3));
        assert_eq!(counts_b, (0, 0, 0));
    }

    #[test]
    fn trace_headers_propagate() {
        let mut endpoints = mesh::<M61>(2);
        let results: Vec<RoundOutcome<M61>> = thread::scope(|s| {
            let handles: Vec<_> = endpoints
                .iter_mut()
                .map(|ep| {
                    s.spawn(move || {
                        let id = ep.id();
                        let headers: Vec<Option<TraceHeader>> = (0..2)
                            .map(|j| {
                                (j != id).then_some(TraceHeader {
                                    run_id: 5,
                                    party: id as u32,
                                    round: 0,
                                    link_seq: 0,
                                    lamport: id as u64 + 1,
                                })
                            })
                            .collect();
                        let out = vec![vec![M61::ONE], vec![M61::ONE]];
                        ep.exchange_stamped(out, Some(headers)).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (me, out) in results.iter().enumerate() {
            let peer = 1 - me;
            let h = out.headers[peer].expect("peer header");
            assert_eq!(h.party, peer as u32);
            assert_eq!(h.lamport, peer as u64 + 1);
            assert_eq!(out.headers[me], None, "self slot was not stamped");
        }
    }

    #[test]
    fn plain_exchange_yields_no_headers() {
        let mut endpoints = mesh::<M61>(2);
        let results: Vec<RoundOutcome<M61>> = thread::scope(|s| {
            let handles: Vec<_> = endpoints
                .iter_mut()
                .map(|ep| s.spawn(move || ep.exchange(vec![vec![M61::ONE]; 2]).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for out in &results {
            assert_eq!(out.headers, vec![None, None]);
        }
    }

    #[test]
    fn fifo_per_pair_across_rounds() {
        let mut endpoints = mesh::<M61>(2);
        thread::scope(|s| {
            let mut it = endpoints.iter_mut();
            let a = it.next().unwrap();
            let b = it.next().unwrap();
            s.spawn(move || {
                for round in 0..10u64 {
                    assert_eq!(a.round(), round);
                    let incoming = a
                        .exchange(vec![vec![], vec![M61::from_u64(round)]])
                        .unwrap()
                        .incoming;
                    assert_eq!(incoming[1], vec![M61::from_u64(round * 100)]);
                }
            });
            s.spawn(move || {
                for round in 0..10u64 {
                    let incoming = b
                        .exchange(vec![vec![M61::from_u64(round * 100)], vec![]])
                        .unwrap()
                        .incoming;
                    assert_eq!(incoming[0], vec![M61::from_u64(round)]);
                }
            });
        });
    }

    #[test]
    fn dropped_peer_yields_disconnected_not_panic() {
        let mut endpoints = mesh::<M61>(2);
        // Dropping party 1's endpoint closes both directions of the 0<->1
        // link: the send may still succeed (unbounded buffer), but the
        // receive must report the disconnect with party and round.
        drop(endpoints.remove(1));
        let err = endpoints[0]
            .exchange(vec![vec![], vec![M61::ONE]])
            .unwrap_err();
        assert_eq!(err, TransportError::Disconnected { party: 1, round: 0 });
    }
}
