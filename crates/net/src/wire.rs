//! Wire format for field-element vectors.
//!
//! Every payload that crosses a transport link is a flat vector of field
//! elements, serialized as the little-endian canonical representative at a
//! fixed `F::byte_width()` bytes per element. The in-process backend passes
//! typed values and only *accounts* bytes with [`encoded_len`]; the TCP
//! backend actually moves these bytes, so [`decode`] validates untrusted
//! input and returns a [`WireError`] instead of panicking.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use sqm_field::PrimeField;

pub use crate::error::WireError;

/// Encode a vector of field elements (fixed `F::byte_width()` bytes each,
/// little-endian canonical representative).
pub fn encode<F: PrimeField>(values: &[F]) -> Bytes {
    let w = F::byte_width();
    let mut buf = BytesMut::with_capacity(values.len() * w);
    for v in values {
        let c = v.to_canonical();
        buf.put_slice(&c.to_le_bytes()[..w]);
    }
    buf.freeze()
}

/// Decode a buffer produced by [`encode`].
///
/// Returns [`WireError::RaggedBuffer`] when the buffer length is not a
/// multiple of the element width and [`WireError::NonCanonical`] when an
/// element is `>=` the field modulus — both are real possibilities once
/// bytes come from a socket rather than an in-process channel.
pub fn decode<F: PrimeField>(mut buf: Bytes) -> Result<Vec<F>, WireError> {
    let w = F::byte_width();
    if !buf.len().is_multiple_of(w) {
        return Err(WireError::RaggedBuffer {
            len: buf.len(),
            width: w,
        });
    }
    let mut out = Vec::with_capacity(buf.len() / w);
    while buf.has_remaining() {
        let mut raw = [0u8; 16];
        buf.copy_to_slice(&mut raw[..w]);
        let c = u128::from_le_bytes(raw);
        if c >= F::modulus() {
            return Err(WireError::NonCanonical {
                value: c,
                modulus: F::modulus(),
            });
        }
        out.push(F::from_u128(c));
    }
    Ok(out)
}

/// The number of bytes [`encode`] produces for `len` elements.
pub fn encoded_len<F: PrimeField>(len: usize) -> u64 {
    (len * F::byte_width()) as u64
}

/// Wire version byte announcing "no trace context attached".
pub const TRACE_HEADER_ABSENT: u8 = 0;
/// Wire version byte of the [`TraceHeader`] v1 layout.
pub const TRACE_HEADER_V1: u8 = 1;

/// Compact causal trace context stamped on a message by the sending party.
///
/// Carried as a *versioned optional* prefix of each frame payload: a single
/// version byte ([`TRACE_HEADER_ABSENT`] or [`TRACE_HEADER_V1`]) followed,
/// for v1, by the five fields in little-endian order. The header is pure
/// observability metadata: it is excluded from the message/byte accounting
/// so [`RoundOutcome`](crate::RoundOutcome) figures stay identical whether
/// tracing is on or off, and identical across backends.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct TraceHeader {
    /// Identifies the protocol run (derived deterministically from the
    /// engine seed so repeated runs produce comparable traces).
    pub run_id: u64,
    /// The sending party's index.
    pub party: u32,
    /// The sender's synchronous round index at send time.
    pub round: u64,
    /// Per-directed-link sequence number (the k-th real message this
    /// sender put on this link), used to match sends to receives.
    pub link_seq: u64,
    /// The sender's Lamport clock at send time.
    pub lamport: u64,
}

impl TraceHeader {
    /// Bytes of a v1 header body (the version byte is not included).
    pub const ENCODED_BYTES: usize = 8 + 4 + 8 + 8 + 8;

    /// Append the versioned optional header (`None` encodes as the single
    /// [`TRACE_HEADER_ABSENT`] byte).
    pub fn encode_into(header: Option<&TraceHeader>, buf: &mut BytesMut) {
        match header {
            None => buf.put_u8(TRACE_HEADER_ABSENT),
            Some(h) => {
                buf.put_u8(TRACE_HEADER_V1);
                buf.put_slice(&h.run_id.to_le_bytes());
                buf.put_slice(&h.party.to_le_bytes());
                buf.put_slice(&h.round.to_le_bytes());
                buf.put_slice(&h.link_seq.to_le_bytes());
                buf.put_slice(&h.lamport.to_le_bytes());
            }
        }
    }

    /// Decode the versioned optional header from the front of `buf`,
    /// leaving the cursor at the first payload byte.
    pub fn decode_from(buf: &mut Bytes) -> Result<Option<TraceHeader>, WireError> {
        let remaining = buf.len();
        if remaining == 0 {
            return Err(WireError::BadTraceHeader {
                version: TRACE_HEADER_ABSENT,
                remaining,
            });
        }
        let mut version = [0u8; 1];
        buf.copy_to_slice(&mut version);
        match version[0] {
            TRACE_HEADER_ABSENT => Ok(None),
            TRACE_HEADER_V1 => {
                if buf.len() < Self::ENCODED_BYTES {
                    return Err(WireError::BadTraceHeader {
                        version: TRACE_HEADER_V1,
                        remaining,
                    });
                }
                let mut u64buf = [0u8; 8];
                let mut u32buf = [0u8; 4];
                buf.copy_to_slice(&mut u64buf);
                let run_id = u64::from_le_bytes(u64buf);
                buf.copy_to_slice(&mut u32buf);
                let party = u32::from_le_bytes(u32buf);
                buf.copy_to_slice(&mut u64buf);
                let round = u64::from_le_bytes(u64buf);
                buf.copy_to_slice(&mut u64buf);
                let link_seq = u64::from_le_bytes(u64buf);
                buf.copy_to_slice(&mut u64buf);
                let lamport = u64::from_le_bytes(u64buf);
                Ok(Some(TraceHeader {
                    run_id,
                    party,
                    round,
                    link_seq,
                    lamport,
                }))
            }
            v => Err(WireError::BadTraceHeader {
                version: v,
                remaining,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sqm_field::{M127, M61};

    #[test]
    fn roundtrip_m61() {
        let mut rng = StdRng::seed_from_u64(1);
        let vals: Vec<M61> = (0..100).map(|_| M61::random(&mut rng)).collect();
        let bytes = encode(&vals);
        assert_eq!(bytes.len() as u64, encoded_len::<M61>(vals.len()));
        assert_eq!(decode::<M61>(bytes).expect("roundtrip"), vals);
    }

    #[test]
    fn roundtrip_m127() {
        let mut rng = StdRng::seed_from_u64(2);
        let vals: Vec<M127> = (0..50).map(|_| M127::random(&mut rng)).collect();
        let bytes = encode(&vals);
        assert_eq!(bytes.len() as u64, encoded_len::<M127>(vals.len()));
        assert_eq!(decode::<M127>(bytes).expect("roundtrip"), vals);
    }

    #[test]
    fn widths() {
        assert_eq!(encoded_len::<M61>(1), 8);
        assert_eq!(encoded_len::<M127>(1), 16);
    }

    #[test]
    fn empty() {
        let bytes = encode::<M61>(&[]);
        assert!(bytes.is_empty());
        assert!(decode::<M61>(bytes).expect("empty").is_empty());
    }

    #[test]
    fn rejects_ragged_buffer() {
        let err = decode::<M61>(Bytes::from_static(&[1, 2, 3])).unwrap_err();
        assert_eq!(err, WireError::RaggedBuffer { len: 3, width: 8 });
    }

    #[test]
    fn trace_header_roundtrip() {
        let h = TraceHeader {
            run_id: 0xDEAD_BEEF_0123_4567,
            party: 3,
            round: 42,
            link_seq: 7,
            lamport: 99,
        };
        let mut buf = BytesMut::new();
        TraceHeader::encode_into(Some(&h), &mut buf);
        assert_eq!(buf.len(), 1 + TraceHeader::ENCODED_BYTES);
        let mut bytes = buf.freeze();
        assert_eq!(TraceHeader::decode_from(&mut bytes).expect("v1"), Some(h));
        assert!(bytes.is_empty());
    }

    #[test]
    fn trace_header_absent_is_one_byte() {
        let mut buf = BytesMut::new();
        TraceHeader::encode_into(None, &mut buf);
        assert_eq!(buf.len(), 1);
        let mut bytes = buf.freeze();
        assert_eq!(TraceHeader::decode_from(&mut bytes).expect("absent"), None);
    }

    #[test]
    fn trace_header_survives_payload_suffix() {
        let vals: Vec<M61> = (0..5).map(M61::from_u64).collect();
        let h = TraceHeader {
            run_id: 1,
            party: 0,
            round: 0,
            link_seq: 0,
            lamport: 1,
        };
        let mut buf = BytesMut::new();
        TraceHeader::encode_into(Some(&h), &mut buf);
        buf.put_slice(encode(&vals).as_ref_slice());
        let mut bytes = buf.freeze();
        assert_eq!(TraceHeader::decode_from(&mut bytes).expect("v1"), Some(h));
        assert_eq!(decode::<M61>(bytes).expect("payload"), vals);
    }

    #[test]
    fn trace_header_rejects_unknown_version_and_truncation() {
        let mut bytes = Bytes::from_static(&[9, 0, 0]);
        match TraceHeader::decode_from(&mut bytes).unwrap_err() {
            WireError::BadTraceHeader { version: 9, .. } => {}
            other => panic!("expected BadTraceHeader, got {other:?}"),
        }
        let mut short = Bytes::from_static(&[TRACE_HEADER_V1, 1, 2, 3]);
        match TraceHeader::decode_from(&mut short).unwrap_err() {
            WireError::BadTraceHeader {
                version: TRACE_HEADER_V1,
                remaining: 4,
            } => {}
            other => panic!("expected truncated BadTraceHeader, got {other:?}"),
        }
        let mut empty = Bytes::new();
        assert!(TraceHeader::decode_from(&mut empty).is_err());
    }

    #[test]
    fn rejects_non_canonical_element() {
        // 2^64 - 1 is far above the Mersenne-61 modulus.
        let err = decode::<M61>(Bytes::from_static(&[0xFF; 8])).unwrap_err();
        match err {
            WireError::NonCanonical { value, modulus } => {
                assert_eq!(value, u64::MAX as u128);
                assert_eq!(modulus, M61::modulus());
            }
            other => panic!("expected NonCanonical, got {other:?}"),
        }
    }
}
