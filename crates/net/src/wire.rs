//! Wire format for field-element vectors.
//!
//! Every payload that crosses a transport link is a flat vector of field
//! elements, serialized as the little-endian canonical representative at a
//! fixed `F::byte_width()` bytes per element. The in-process backend passes
//! typed values and only *accounts* bytes with [`encoded_len`]; the TCP
//! backend actually moves these bytes, so [`decode`] validates untrusted
//! input and returns a [`WireError`] instead of panicking.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use sqm_field::PrimeField;

pub use crate::error::WireError;

/// Encode a vector of field elements (fixed `F::byte_width()` bytes each,
/// little-endian canonical representative).
pub fn encode<F: PrimeField>(values: &[F]) -> Bytes {
    let w = F::byte_width();
    let mut buf = BytesMut::with_capacity(values.len() * w);
    for v in values {
        let c = v.to_canonical();
        buf.put_slice(&c.to_le_bytes()[..w]);
    }
    buf.freeze()
}

/// Decode a buffer produced by [`encode`].
///
/// Returns [`WireError::RaggedBuffer`] when the buffer length is not a
/// multiple of the element width and [`WireError::NonCanonical`] when an
/// element is `>=` the field modulus — both are real possibilities once
/// bytes come from a socket rather than an in-process channel.
pub fn decode<F: PrimeField>(mut buf: Bytes) -> Result<Vec<F>, WireError> {
    let w = F::byte_width();
    if !buf.len().is_multiple_of(w) {
        return Err(WireError::RaggedBuffer {
            len: buf.len(),
            width: w,
        });
    }
    let mut out = Vec::with_capacity(buf.len() / w);
    while buf.has_remaining() {
        let mut raw = [0u8; 16];
        buf.copy_to_slice(&mut raw[..w]);
        let c = u128::from_le_bytes(raw);
        if c >= F::modulus() {
            return Err(WireError::NonCanonical {
                value: c,
                modulus: F::modulus(),
            });
        }
        out.push(F::from_u128(c));
    }
    Ok(out)
}

/// The number of bytes [`encode`] produces for `len` elements.
pub fn encoded_len<F: PrimeField>(len: usize) -> u64 {
    (len * F::byte_width()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sqm_field::{M127, M61};

    #[test]
    fn roundtrip_m61() {
        let mut rng = StdRng::seed_from_u64(1);
        let vals: Vec<M61> = (0..100).map(|_| M61::random(&mut rng)).collect();
        let bytes = encode(&vals);
        assert_eq!(bytes.len() as u64, encoded_len::<M61>(vals.len()));
        assert_eq!(decode::<M61>(bytes).expect("roundtrip"), vals);
    }

    #[test]
    fn roundtrip_m127() {
        let mut rng = StdRng::seed_from_u64(2);
        let vals: Vec<M127> = (0..50).map(|_| M127::random(&mut rng)).collect();
        let bytes = encode(&vals);
        assert_eq!(bytes.len() as u64, encoded_len::<M127>(vals.len()));
        assert_eq!(decode::<M127>(bytes).expect("roundtrip"), vals);
    }

    #[test]
    fn widths() {
        assert_eq!(encoded_len::<M61>(1), 8);
        assert_eq!(encoded_len::<M127>(1), 16);
    }

    #[test]
    fn empty() {
        let bytes = encode::<M61>(&[]);
        assert!(bytes.is_empty());
        assert!(decode::<M61>(bytes).expect("empty").is_empty());
    }

    #[test]
    fn rejects_ragged_buffer() {
        let err = decode::<M61>(Bytes::from_static(&[1, 2, 3])).unwrap_err();
        assert_eq!(err, WireError::RaggedBuffer { len: 3, width: 8 });
    }

    #[test]
    fn rejects_non_canonical_element() {
        // 2^64 - 1 is far above the Mersenne-61 modulus.
        let err = decode::<M61>(Bytes::from_static(&[0xFF; 8])).unwrap_err();
        match err {
            WireError::NonCanonical { value, modulus } => {
                assert_eq!(value, u64::MAX as u128);
                assert_eq!(modulus, M61::modulus());
            }
            other => panic!("expected NonCanonical, got {other:?}"),
        }
    }
}
