//! Wire format for field-element vectors.
//!
//! Every payload that crosses a transport link is a flat vector of field
//! elements, serialized as the little-endian canonical representative at a
//! fixed `F::byte_width()` bytes per element. The in-process backend passes
//! typed values and only *accounts* bytes with [`encoded_len`]; the TCP
//! backend actually moves these bytes, so [`decode`] validates untrusted
//! input and returns a [`WireError`] instead of panicking.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use sqm_field::PrimeField;

pub use crate::error::WireError;

/// Encode a vector of field elements (fixed `F::byte_width()` bytes each,
/// little-endian canonical representative).
pub fn encode<F: PrimeField>(values: &[F]) -> Bytes {
    let w = F::byte_width();
    let mut buf = BytesMut::with_capacity(values.len() * w);
    for v in values {
        let c = v.to_canonical();
        buf.put_slice(&c.to_le_bytes()[..w]);
    }
    buf.freeze()
}

/// Decode a buffer produced by [`encode`].
///
/// Returns [`WireError::RaggedBuffer`] when the buffer length is not a
/// multiple of the element width and [`WireError::NonCanonical`] when an
/// element is `>=` the field modulus — both are real possibilities once
/// bytes come from a socket rather than an in-process channel.
pub fn decode<F: PrimeField>(mut buf: Bytes) -> Result<Vec<F>, WireError> {
    let w = F::byte_width();
    if !buf.len().is_multiple_of(w) {
        return Err(WireError::RaggedBuffer {
            len: buf.len(),
            width: w,
        });
    }
    let mut out = Vec::with_capacity(buf.len() / w);
    while buf.has_remaining() {
        let mut raw = [0u8; 16];
        buf.copy_to_slice(&mut raw[..w]);
        let c = u128::from_le_bytes(raw);
        if c >= F::modulus() {
            return Err(WireError::NonCanonical {
                value: c,
                modulus: F::modulus(),
            });
        }
        out.push(F::from_u128(c));
    }
    Ok(out)
}

/// The number of bytes [`encode`] produces for `len` elements.
pub fn encoded_len<F: PrimeField>(len: usize) -> u64 {
    (len * F::byte_width()) as u64
}

/// Wire version byte announcing "no trace context attached".
pub const TRACE_HEADER_ABSENT: u8 = 0;
/// Wire version byte of the [`TraceHeader`] v1 layout.
pub const TRACE_HEADER_V1: u8 = 1;

/// Compact causal trace context stamped on a message by the sending party.
///
/// Carried as a *versioned optional* prefix of each frame payload: a single
/// version byte ([`TRACE_HEADER_ABSENT`] or [`TRACE_HEADER_V1`]) followed,
/// for v1, by the five fields in little-endian order. The header is pure
/// observability metadata: it is excluded from the message/byte accounting
/// so [`RoundOutcome`](crate::RoundOutcome) figures stay identical whether
/// tracing is on or off, and identical across backends.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct TraceHeader {
    /// Identifies the protocol run (derived deterministically from the
    /// engine seed so repeated runs produce comparable traces).
    pub run_id: u64,
    /// The sending party's index.
    pub party: u32,
    /// The sender's synchronous round index at send time.
    pub round: u64,
    /// Per-directed-link sequence number (the k-th real message this
    /// sender put on this link), used to match sends to receives.
    pub link_seq: u64,
    /// The sender's Lamport clock at send time.
    pub lamport: u64,
}

impl TraceHeader {
    /// Bytes of a v1 header body (the version byte is not included).
    pub const ENCODED_BYTES: usize = 8 + 4 + 8 + 8 + 8;

    /// Append the versioned optional header (`None` encodes as the single
    /// [`TRACE_HEADER_ABSENT`] byte).
    pub fn encode_into(header: Option<&TraceHeader>, buf: &mut BytesMut) {
        match header {
            None => buf.put_u8(TRACE_HEADER_ABSENT),
            Some(h) => {
                buf.put_u8(TRACE_HEADER_V1);
                buf.put_slice(&h.run_id.to_le_bytes());
                buf.put_slice(&h.party.to_le_bytes());
                buf.put_slice(&h.round.to_le_bytes());
                buf.put_slice(&h.link_seq.to_le_bytes());
                buf.put_slice(&h.lamport.to_le_bytes());
            }
        }
    }

    /// Decode the versioned optional header from the front of `buf`,
    /// leaving the cursor at the first payload byte.
    pub fn decode_from(buf: &mut Bytes) -> Result<Option<TraceHeader>, WireError> {
        let remaining = buf.len();
        if remaining == 0 {
            return Err(WireError::BadTraceHeader {
                version: TRACE_HEADER_ABSENT,
                remaining,
            });
        }
        let mut version = [0u8; 1];
        buf.copy_to_slice(&mut version);
        match version[0] {
            TRACE_HEADER_ABSENT => Ok(None),
            TRACE_HEADER_V1 => {
                if buf.len() < Self::ENCODED_BYTES {
                    return Err(WireError::BadTraceHeader {
                        version: TRACE_HEADER_V1,
                        remaining,
                    });
                }
                let mut u64buf = [0u8; 8];
                let mut u32buf = [0u8; 4];
                buf.copy_to_slice(&mut u64buf);
                let run_id = u64::from_le_bytes(u64buf);
                buf.copy_to_slice(&mut u32buf);
                let party = u32::from_le_bytes(u32buf);
                buf.copy_to_slice(&mut u64buf);
                let round = u64::from_le_bytes(u64buf);
                buf.copy_to_slice(&mut u64buf);
                let link_seq = u64::from_le_bytes(u64buf);
                buf.copy_to_slice(&mut u64buf);
                let lamport = u64::from_le_bytes(u64buf);
                Ok(Some(TraceHeader {
                    run_id,
                    party,
                    round,
                    link_seq,
                    lamport,
                }))
            }
            v => Err(WireError::BadTraceHeader {
                version: v,
                remaining,
            }),
        }
    }
}

/// A round-batched wire frame: every field element one party sends to one
/// peer in one synchronous round, carried as a single unit.
///
/// Layout (inside whatever outer framing the backend uses):
///
/// ```text
/// [u32 element count, LE] [versioned TraceHeader] [elements]
/// ```
///
/// The element count is redundant with the payload length but makes the
/// frame self-describing and lets [`Frame::decode`] reject corruption with
/// a *typed* error instead of silently mis-splitting: a buffer shorter than
/// the announced content is [`WireError::TruncatedFrame`], trailing bytes
/// beyond it are [`WireError::FrameCountMismatch`], and element validation
/// reuses [`decode`]'s [`WireError::NonCanonical`]. Decoding never panics
/// on untrusted input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame<F> {
    /// Causal trace context stamped by the sender, if any.
    pub header: Option<TraceHeader>,
    /// The field elements the frame carries.
    pub elements: Vec<F>,
}

impl<F: PrimeField> Frame<F> {
    /// Bytes of the element-count prefix.
    pub const COUNT_BYTES: usize = 4;

    /// Encode a frame carrying `elements` with an optional trace header.
    pub fn encode(elements: &[F], header: Option<&TraceHeader>) -> Bytes {
        let count = u32::try_from(elements.len()).expect("frame width exceeds u32 element count");
        let body = encode(elements);
        let mut buf = BytesMut::with_capacity(
            Self::COUNT_BYTES + 1 + TraceHeader::ENCODED_BYTES + body.len(),
        );
        buf.put_slice(&count.to_le_bytes());
        TraceHeader::encode_into(header, &mut buf);
        buf.put_slice(body.as_ref_slice());
        buf.freeze()
    }

    /// Decode a frame produced by [`Frame::encode`], validating the
    /// element-count prefix against the payload.
    pub fn decode(mut buf: Bytes) -> Result<Frame<F>, WireError> {
        if buf.len() < Self::COUNT_BYTES {
            return Err(WireError::TruncatedFrame {
                len: buf.len(),
                needed: Self::COUNT_BYTES,
            });
        }
        let mut count = [0u8; 4];
        buf.copy_to_slice(&mut count);
        let declared = u32::from_le_bytes(count) as usize;
        let header = TraceHeader::decode_from(&mut buf)?;
        let width = F::byte_width();
        let expected = declared * width;
        match buf.len().cmp(&expected) {
            std::cmp::Ordering::Less => Err(WireError::TruncatedFrame {
                len: buf.len(),
                needed: expected,
            }),
            std::cmp::Ordering::Greater => Err(WireError::FrameCountMismatch {
                declared,
                payload_bytes: buf.len(),
                width,
            }),
            std::cmp::Ordering::Equal => Ok(Frame {
                header,
                elements: decode::<F>(buf)?,
            }),
        }
    }

    /// Total encoded bytes of a frame carrying `n_elements` elements.
    pub fn encoded_bytes(n_elements: usize, with_header: bool) -> usize {
        Self::COUNT_BYTES
            + 1
            + if with_header {
                TraceHeader::ENCODED_BYTES
            } else {
                0
            }
            + n_elements * F::byte_width()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sqm_field::{M127, M61};

    #[test]
    fn roundtrip_m61() {
        let mut rng = StdRng::seed_from_u64(1);
        let vals: Vec<M61> = (0..100).map(|_| M61::random(&mut rng)).collect();
        let bytes = encode(&vals);
        assert_eq!(bytes.len() as u64, encoded_len::<M61>(vals.len()));
        assert_eq!(decode::<M61>(bytes).expect("roundtrip"), vals);
    }

    #[test]
    fn roundtrip_m127() {
        let mut rng = StdRng::seed_from_u64(2);
        let vals: Vec<M127> = (0..50).map(|_| M127::random(&mut rng)).collect();
        let bytes = encode(&vals);
        assert_eq!(bytes.len() as u64, encoded_len::<M127>(vals.len()));
        assert_eq!(decode::<M127>(bytes).expect("roundtrip"), vals);
    }

    #[test]
    fn widths() {
        assert_eq!(encoded_len::<M61>(1), 8);
        assert_eq!(encoded_len::<M127>(1), 16);
    }

    #[test]
    fn empty() {
        let bytes = encode::<M61>(&[]);
        assert!(bytes.is_empty());
        assert!(decode::<M61>(bytes).expect("empty").is_empty());
    }

    #[test]
    fn rejects_ragged_buffer() {
        let err = decode::<M61>(Bytes::from_static(&[1, 2, 3])).unwrap_err();
        assert_eq!(err, WireError::RaggedBuffer { len: 3, width: 8 });
    }

    #[test]
    fn trace_header_roundtrip() {
        let h = TraceHeader {
            run_id: 0xDEAD_BEEF_0123_4567,
            party: 3,
            round: 42,
            link_seq: 7,
            lamport: 99,
        };
        let mut buf = BytesMut::new();
        TraceHeader::encode_into(Some(&h), &mut buf);
        assert_eq!(buf.len(), 1 + TraceHeader::ENCODED_BYTES);
        let mut bytes = buf.freeze();
        assert_eq!(TraceHeader::decode_from(&mut bytes).expect("v1"), Some(h));
        assert!(bytes.is_empty());
    }

    #[test]
    fn trace_header_absent_is_one_byte() {
        let mut buf = BytesMut::new();
        TraceHeader::encode_into(None, &mut buf);
        assert_eq!(buf.len(), 1);
        let mut bytes = buf.freeze();
        assert_eq!(TraceHeader::decode_from(&mut bytes).expect("absent"), None);
    }

    #[test]
    fn trace_header_survives_payload_suffix() {
        let vals: Vec<M61> = (0..5).map(M61::from_u64).collect();
        let h = TraceHeader {
            run_id: 1,
            party: 0,
            round: 0,
            link_seq: 0,
            lamport: 1,
        };
        let mut buf = BytesMut::new();
        TraceHeader::encode_into(Some(&h), &mut buf);
        buf.put_slice(encode(&vals).as_ref_slice());
        let mut bytes = buf.freeze();
        assert_eq!(TraceHeader::decode_from(&mut bytes).expect("v1"), Some(h));
        assert_eq!(decode::<M61>(bytes).expect("payload"), vals);
    }

    #[test]
    fn trace_header_rejects_unknown_version_and_truncation() {
        let mut bytes = Bytes::from_static(&[9, 0, 0]);
        match TraceHeader::decode_from(&mut bytes).unwrap_err() {
            WireError::BadTraceHeader { version: 9, .. } => {}
            other => panic!("expected BadTraceHeader, got {other:?}"),
        }
        let mut short = Bytes::from_static(&[TRACE_HEADER_V1, 1, 2, 3]);
        match TraceHeader::decode_from(&mut short).unwrap_err() {
            WireError::BadTraceHeader {
                version: TRACE_HEADER_V1,
                remaining: 4,
            } => {}
            other => panic!("expected truncated BadTraceHeader, got {other:?}"),
        }
        let mut empty = Bytes::new();
        assert!(TraceHeader::decode_from(&mut empty).is_err());
    }

    #[test]
    fn rejects_non_canonical_element() {
        // 2^64 - 1 is far above the Mersenne-61 modulus.
        let err = decode::<M61>(Bytes::from_static(&[0xFF; 8])).unwrap_err();
        match err {
            WireError::NonCanonical { value, modulus } => {
                assert_eq!(value, u64::MAX as u128);
                assert_eq!(modulus, M61::modulus());
            }
            other => panic!("expected NonCanonical, got {other:?}"),
        }
    }

    #[test]
    fn frame_roundtrip_with_and_without_header() {
        let vals: Vec<M61> = (0..17).map(M61::from_u64).collect();
        let h = TraceHeader {
            run_id: 3,
            party: 1,
            round: 9,
            link_seq: 4,
            lamport: 20,
        };
        let framed = Frame::<M61>::encode(&vals, Some(&h));
        assert_eq!(framed.len(), Frame::<M61>::encoded_bytes(vals.len(), true));
        let dec = Frame::<M61>::decode(framed).expect("frame roundtrip");
        assert_eq!(dec.header, Some(h));
        assert_eq!(dec.elements, vals);

        let bare = Frame::<M61>::encode(&vals, None);
        assert_eq!(bare.len(), Frame::<M61>::encoded_bytes(vals.len(), false));
        let dec = Frame::<M61>::decode(bare).expect("bare frame roundtrip");
        assert_eq!(dec.header, None);
        assert_eq!(dec.elements, vals);
    }

    #[test]
    fn empty_frame_is_five_bytes_and_roundtrips() {
        let framed = Frame::<M61>::encode(&[], None);
        assert_eq!(framed.len(), Frame::<M61>::COUNT_BYTES + 1);
        let dec = Frame::<M61>::decode(framed).expect("empty frame");
        assert_eq!(dec.header, None);
        assert!(dec.elements.is_empty());
    }

    #[test]
    fn frame_rejects_truncated_count_prefix() {
        let err = Frame::<M61>::decode(Bytes::from_static(&[1, 0])).unwrap_err();
        assert_eq!(err, WireError::TruncatedFrame { len: 2, needed: 4 });
    }

    #[test]
    fn frame_rejects_truncated_payload() {
        // Announce 2 elements, absent header, carry only one.
        let mut buf = BytesMut::new();
        buf.put_slice(&2u32.to_le_bytes());
        TraceHeader::encode_into(None, &mut buf);
        buf.put_slice(encode(&[M61::ONE]).as_ref_slice());
        let err = Frame::<M61>::decode(buf.freeze()).unwrap_err();
        assert_eq!(err, WireError::TruncatedFrame { len: 8, needed: 16 });
    }

    #[test]
    fn frame_rejects_count_mismatch_with_trailing_bytes() {
        // Announce 1 element but carry two.
        let mut buf = BytesMut::new();
        buf.put_slice(&1u32.to_le_bytes());
        TraceHeader::encode_into(None, &mut buf);
        buf.put_slice(encode(&[M61::ONE, M61::ONE]).as_ref_slice());
        let err = Frame::<M61>::decode(buf.freeze()).unwrap_err();
        assert_eq!(
            err,
            WireError::FrameCountMismatch {
                declared: 1,
                payload_bytes: 16,
                width: 8,
            }
        );
    }

    #[test]
    fn frame_rejects_non_canonical_element() {
        let mut buf = BytesMut::new();
        buf.put_slice(&1u32.to_le_bytes());
        TraceHeader::encode_into(None, &mut buf);
        buf.put_slice(&[0xFF; 8]);
        let err = Frame::<M61>::decode(buf.freeze()).unwrap_err();
        assert!(
            matches!(err, WireError::NonCanonical { .. }),
            "expected NonCanonical, got {err:?}"
        );
    }

    #[test]
    fn frame_rejects_bad_header_version() {
        let mut buf = BytesMut::new();
        buf.put_slice(&0u32.to_le_bytes());
        buf.put_u8(42); // unknown header version
        let err = Frame::<M61>::decode(buf.freeze()).unwrap_err();
        assert!(
            matches!(err, WireError::BadTraceHeader { version: 42, .. }),
            "expected BadTraceHeader, got {err:?}"
        );
    }
}

#[cfg(test)]
mod frame_proptests {
    //! Satellite: frame encode/decode round-trips for arbitrary widths
    //! 0..=4096 over both fields including the boundary values 0 and p-1,
    //! and malformed input always yields a typed [`WireError`] — never a
    //! panic or a silently wrong decode.

    use super::*;
    use proptest::prelude::*;
    use sqm_field::{M127, M61};

    /// Element values spanning the full canonical range, with the
    /// boundaries 0 and p-1 explicitly over-weighted.
    fn element<FP: PrimeField>(raw: u128) -> FP {
        FP::from_u128(raw % FP::modulus())
    }

    fn header_from(seed: u64) -> TraceHeader {
        TraceHeader {
            run_id: seed,
            party: (seed % 97) as u32,
            round: seed.rotate_left(17),
            link_seq: seed.rotate_left(33),
            lamport: seed.rotate_left(49),
        }
    }

    proptest! {
        #[test]
        fn prop_frame_roundtrip_m61(
            width in 0usize..=4096,
            fill in any::<u64>(),
            with_header in any::<bool>(),
            hseed in any::<u64>(),
        ) {
            // Mix the boundary values 0 and p-1 into every wide payload.
            let vals: Vec<M61> = (0..width)
                .map(|i| match i % 3 {
                    0 => M61::ZERO,
                    1 => M61::from_u128(M61::modulus() - 1),
                    _ => element::<M61>((fill as u128).wrapping_add(i as u128)),
                })
                .collect();
            let header = with_header.then(|| header_from(hseed));
            let framed = Frame::<M61>::encode(&vals, header.as_ref());
            let dec = Frame::<M61>::decode(framed).expect("roundtrip");
            prop_assert_eq!(dec.header, header);
            prop_assert_eq!(dec.elements, vals);
        }

        #[test]
        fn prop_frame_roundtrip_m127(
            width in 0usize..=4096,
            fill in any::<u64>(),
            with_header in any::<bool>(),
            hseed in any::<u64>(),
        ) {
            let vals: Vec<M127> = (0..width)
                .map(|i| match i % 3 {
                    0 => M127::ZERO,
                    1 => M127::from_u128(M127::modulus() - 1),
                    _ => element::<M127>(((fill as u128) << 64).wrapping_add(i as u128)),
                })
                .collect();
            let header = with_header.then(|| header_from(hseed));
            let framed = Frame::<M127>::encode(&vals, header.as_ref());
            let dec = Frame::<M127>::decode(framed).expect("roundtrip");
            prop_assert_eq!(dec.header, header);
            prop_assert_eq!(dec.elements, vals);
        }

        #[test]
        fn prop_truncation_is_typed_never_panics(
            width in 0usize..=256,
            cut_frac in 0.0f64..1.0,
            with_header in any::<bool>(),
        ) {
            let vals: Vec<M61> = (0..width).map(|i| M61::from_u64(i as u64)).collect();
            let header = with_header.then(|| header_from(width as u64));
            let framed = Frame::<M61>::encode(&vals, header.as_ref());
            // Cut the frame strictly short: every truncation must decode to
            // a typed error (TruncatedFrame or BadTraceHeader).
            let keep = ((framed.len() as f64 * cut_frac) as usize).min(framed.len() - 1);
            let cutout = Bytes::from(framed.as_ref_slice()[..keep].to_vec());
            let err = Frame::<M61>::decode(cutout).expect_err("truncated frame must fail");
            prop_assert!(matches!(
                err,
                WireError::TruncatedFrame { .. } | WireError::BadTraceHeader { .. }
            ), "unexpected error for truncation at {keep}: {err:?}");
        }

        #[test]
        fn prop_malformed_length_is_typed_never_panics(
            width in 0usize..=64,
            declared in 0u32..=8192,
            garbage in collection::vec(any::<u8>(), 0usize..64),
        ) {
            // Arbitrary declared count glued to an arbitrary payload tail:
            // decode must either succeed on an exactly-consistent frame or
            // return a typed error — never panic.
            let vals: Vec<M61> = (0..width).map(|i| M61::from_u64(i as u64)).collect();
            let mut buf = BytesMut::new();
            buf.put_slice(&declared.to_le_bytes());
            TraceHeader::encode_into(None, &mut buf);
            buf.put_slice(encode(&vals).as_ref_slice());
            buf.put_slice(&garbage);
            match Frame::<M61>::decode(buf.freeze()) {
                Ok(frame) => {
                    prop_assert_eq!(frame.elements.len(), declared as usize);
                }
                Err(
                    WireError::TruncatedFrame { .. }
                    | WireError::FrameCountMismatch { .. }
                    | WireError::NonCanonical { .. }
                    | WireError::RaggedBuffer { .. },
                ) => {}
                Err(other) => prop_assert!(false, "unexpected error {other:?}"),
            }
        }
    }
}
