//! Deterministic, seed-driven fault injection over any [`Transport`].
//!
//! The fault plan is a *pure function* of `(seed, from, to, round)`: two
//! runs with the same [`FaultSpec`] see byte-identical delay/drop schedules,
//! which makes fault scenarios reproducible in tests and keeps the protocol
//! output bit-identical to a fault-free run whenever the run completes
//! (faults perturb timing, never payloads).
//!
//! Three fault classes, composable over either backend:
//!
//! * **per-link delay** — each real message on link `from -> to` is held
//!   for a uniform draw from the configured range before the round's
//!   payloads move;
//! * **message drop with retransmit-on-timeout** — a dropped transmission
//!   costs the sender one [`FaultSpec::retransmit_timeout`] before the
//!   retransmit; exhausting [`FaultSpec::max_retransmits`] fails the round
//!   with [`TransportError::RetransmitExhausted`] naming the destination
//!   party and round;
//! * **single-party crash** — the configured party stops cold at the
//!   configured round with [`TransportError::Crashed`]; its dropped
//!   endpoint then surfaces at the survivors as
//!   [`TransportError::Disconnected`] on the same link.
//!
//! Because the schedule is symmetric knowledge (both ends could compute
//! it), the sender simulates the drop/retransmit cycle locally as a sleep
//! and then performs one real transmission — the receiver just waits.
//! `RunStats` traffic counts therefore stay those of *successful*
//! payloads; the retry traffic shows up in the metrics registry
//! (`net.fault.retransmits`, `net.fault.dropped_messages`) and in the
//! trace's [`NetEvent`] stream instead.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqm_field::PrimeField;
use sqm_obs::metrics;
use sqm_obs::trace::NetEvent;

use crate::error::TransportError;
use crate::transport::{FrameMode, RoundOutcome, Transport};
use crate::wire::TraceHeader;

/// Crash `party` at the start of its `round`-th exchange (0-based).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashPoint {
    pub party: usize,
    pub round: u64,
}

/// A deterministic fault plan.
#[derive(Clone, Debug)]
pub struct FaultSpec {
    /// Seed of the fault schedule (independent of the protocol seed).
    pub seed: u64,
    /// Uniform per-message delay range `[min, max)`, if any.
    pub delay: Option<(Duration, Duration)>,
    /// Probability that any single transmission attempt is dropped.
    pub drop_prob: f64,
    /// Retransmits allowed per message before the round fails.
    pub max_retransmits: u32,
    /// Time a sender waits before concluding an attempt was dropped.
    pub retransmit_timeout: Duration,
    /// Optional single-party crash.
    pub crash: Option<CrashPoint>,
}

impl FaultSpec {
    /// A no-op plan with the given schedule seed: no delay, no drops, no
    /// crash, a 5 ms retransmit timeout and a budget of 10 retransmits.
    pub fn seeded(seed: u64) -> Self {
        FaultSpec {
            seed,
            delay: None,
            drop_prob: 0.0,
            max_retransmits: 10,
            retransmit_timeout: Duration::from_millis(5),
            crash: None,
        }
    }

    /// Delay every real message by a uniform draw from `[min, max)`.
    pub fn with_delay(mut self, min: Duration, max: Duration) -> Self {
        assert!(min <= max, "delay range inverted");
        self.delay = Some((min, max));
        self
    }

    /// Drop each transmission attempt independently with probability `p`.
    pub fn with_drop(mut self, p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability out of range");
        self.drop_prob = p;
        self
    }

    /// Configure the retransmit budget and per-attempt timeout.
    pub fn with_retransmit(mut self, timeout: Duration, max_retransmits: u32) -> Self {
        self.retransmit_timeout = timeout;
        self.max_retransmits = max_retransmits;
        self
    }

    /// Crash `party` at the start of round `round`.
    pub fn with_crash(mut self, party: usize, round: u64) -> Self {
        self.crash = Some(CrashPoint { party, round });
        self
    }
}

/// The schedule for one message on one link in one round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkFault {
    /// Injected propagation delay.
    pub delay: Duration,
    /// Transmission attempts dropped before the one that succeeds.
    pub dropped_attempts: u32,
    /// Whether the drop sequence exhausted the retransmit budget
    /// (initial attempt plus `max_retransmits` retransmits all dropped).
    pub exhausted: bool,
}

fn mix(seed: u64, from: usize, to: usize, round: u64) -> u64 {
    // Distinct odd multipliers decorrelate the coordinates; StdRng's
    // seed_from_u64 runs SplitMix on top, so simple mixing suffices.
    seed ^ (from as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (to as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ round.wrapping_mul(0x1656_67B1_9E37_79F9)
}

/// The deterministic fault schedule for link `from -> to` at `round` —
/// a pure function of the spec, so identical seeds give identical
/// schedules (assert-tested).
pub fn schedule(spec: &FaultSpec, from: usize, to: usize, round: u64) -> LinkFault {
    let mut rng = StdRng::seed_from_u64(mix(spec.seed, from, to, round));
    let delay = match spec.delay {
        None => Duration::ZERO,
        Some((min, max)) => {
            let span = max.saturating_sub(min);
            min + span.mul_f64(rng.gen::<f64>())
        }
    };
    let mut dropped_attempts = 0u32;
    let mut exhausted = false;
    if spec.drop_prob > 0.0 {
        // Attempt k is dropped with probability `drop_prob`; the budget is
        // one initial transmission plus `max_retransmits` retransmits.
        while rng.gen_bool(spec.drop_prob) {
            dropped_attempts += 1;
            if dropped_attempts > spec.max_retransmits {
                exhausted = true;
                break;
            }
        }
    }
    LinkFault {
        delay,
        dropped_attempts,
        exhausted,
    }
}

/// A [`Transport`] decorator applying a [`FaultSpec`] to every round.
pub struct FaultTransport<F: PrimeField> {
    inner: Box<dyn Transport<F>>,
    spec: FaultSpec,
    events: Vec<NetEvent>,
}

impl<F: PrimeField> FaultTransport<F> {
    pub fn new(inner: Box<dyn Transport<F>>, spec: FaultSpec) -> Self {
        FaultTransport {
            inner,
            spec,
            events: Vec::new(),
        }
    }
}

impl<F: PrimeField> Transport<F> for FaultTransport<F> {
    fn id(&self) -> usize {
        self.inner.id()
    }

    fn n_parties(&self) -> usize {
        self.inner.n_parties()
    }

    fn round(&self) -> u64 {
        self.inner.round()
    }

    fn exchange_stamped(
        &mut self,
        outgoing: Vec<Vec<F>>,
        headers: Option<Vec<Option<TraceHeader>>>,
    ) -> Result<RoundOutcome<F>, TransportError> {
        let me = self.inner.id();
        let round = self.inner.round();

        if let Some(crash) = self.spec.crash {
            if crash.party == me && round >= crash.round {
                metrics::counter_add("net.fault.crashes", 1);
                // Returning drops nothing yet — the party thread unwinds,
                // dropping this endpoint, which the peers observe as a
                // disconnect on their next receive.
                return Err(TransportError::Crashed {
                    party: me,
                    round: crash.round,
                });
            }
        }

        // Faults apply to real messages only (non-empty, non-loopback).
        // The sender experiences its own drops as retransmit timeouts; the
        // round's injected cost is the worst link, since sends to distinct
        // destinations proceed concurrently on a real network.
        let mut injected = Duration::ZERO;
        for (to, payload) in outgoing.iter().enumerate() {
            if to == me || payload.is_empty() {
                continue;
            }
            let fault = schedule(&self.spec, me, to, round);
            if fault.exhausted {
                metrics::counter_add("net.fault.exhausted", 1);
                return Err(TransportError::RetransmitExhausted {
                    party: to,
                    round,
                    attempts: fault.dropped_attempts,
                });
            }
            if fault.dropped_attempts > 0 {
                metrics::counter_add("net.fault.dropped_messages", 1);
                metrics::counter_add("net.fault.retransmits", fault.dropped_attempts as u64);
                self.events.push(NetEvent {
                    party: me,
                    round,
                    peer: to,
                    kind: "retransmit".to_string(),
                    value: fault.dropped_attempts as f64,
                });
            }
            if fault.delay > Duration::ZERO {
                self.events.push(NetEvent {
                    party: me,
                    round,
                    peer: to,
                    kind: "delay".to_string(),
                    value: fault.delay.as_secs_f64(),
                });
            }
            let link_cost = fault.delay + self.spec.retransmit_timeout * fault.dropped_attempts;
            injected = injected.max(link_cost);
        }
        if injected > Duration::ZERO {
            metrics::histogram_record("net.fault.injected_delay_s", injected.as_secs_f64());
            std::thread::sleep(injected);
        }

        self.inner.exchange_stamped(outgoing, headers)
    }

    fn drain_events(&mut self) -> Vec<NetEvent> {
        let mut events = std::mem::take(&mut self.events);
        events.extend(self.inner.drain_events());
        events
    }

    fn set_frame_mode(&mut self, mode: FrameMode) {
        // The fault schedule is a pure function of (seed, from, to, round)
        // applied once per link per *round*, so it is identical in both
        // frame modes by construction; only the inner backend cares.
        self.inner.set_frame_mode(mode);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::mesh;
    use sqm_field::M61;
    use std::thread;

    #[test]
    fn schedule_is_deterministic_and_seed_sensitive() {
        let spec = FaultSpec::seeded(42)
            .with_delay(Duration::from_micros(10), Duration::from_micros(500))
            .with_drop(0.3);
        let mut differs = false;
        for from in 0..4 {
            for to in 0..4 {
                for round in 0..16 {
                    let a = schedule(&spec, from, to, round);
                    let b = schedule(&spec, from, to, round);
                    assert_eq!(a, b, "same spec must give the same schedule");
                    let other = schedule(
                        &FaultSpec {
                            seed: 43,
                            ..spec.clone()
                        },
                        from,
                        to,
                        round,
                    );
                    differs |= other != a;
                }
            }
        }
        assert!(differs, "changing the seed must change the schedule");
    }

    #[test]
    fn schedule_varies_across_links_and_rounds() {
        let spec = FaultSpec::seeded(7).with_delay(Duration::ZERO, Duration::from_millis(10));
        let d0 = schedule(&spec, 0, 1, 0).delay;
        let d1 = schedule(&spec, 1, 0, 0).delay;
        let d2 = schedule(&spec, 0, 1, 1).delay;
        assert!(d0 != d1 || d0 != d2, "schedule should not be constant");
    }

    #[test]
    fn crash_fires_at_the_configured_round_and_party() {
        let spec = FaultSpec::seeded(1).with_crash(1, 2);
        let endpoints = mesh::<M61>(2);
        let errors: Vec<Option<TransportError>> = thread::scope(|s| {
            let handles: Vec<_> = endpoints
                .into_iter()
                .map(|ep| {
                    let spec = spec.clone();
                    s.spawn(move || {
                        let mut t = FaultTransport::new(Box::new(ep), spec);
                        for _ in 0..5 {
                            let payload = vec![M61::from_u64(Transport::<M61>::id(&t) as u64)];
                            match t.broadcast(payload) {
                                Ok(_) => {}
                                Err(e) => return Some(e),
                            }
                        }
                        None
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            errors[1],
            Some(TransportError::Crashed { party: 1, round: 2 })
        );
        // The survivor observes the crashed party's dropped endpoint as a
        // disconnect on the same link at the same round.
        match errors[0].as_ref().expect("survivor must also fail") {
            TransportError::Disconnected { party, round } => {
                assert_eq!(*party, 1);
                assert_eq!(*round, 2);
            }
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn drops_delay_but_do_not_corrupt() {
        let spec = FaultSpec::seeded(5)
            .with_drop(0.4)
            .with_retransmit(Duration::from_micros(200), 50);
        let endpoints = mesh::<M61>(3);
        let results: Vec<Vec<Vec<M61>>> = thread::scope(|s| {
            let handles: Vec<_> = endpoints
                .into_iter()
                .map(|ep| {
                    let spec = spec.clone();
                    s.spawn(move || {
                        let mut t = FaultTransport::new(Box::new(ep), spec);
                        let id = Transport::<M61>::id(&t) as u64;
                        let mut got = Vec::new();
                        for round in 0..8u64 {
                            let out = t.broadcast(vec![M61::from_u64(id * 1000 + round)]).unwrap();
                            got.push(out.incoming.into_iter().flatten().collect::<Vec<_>>());
                        }
                        got
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for result in &results {
            for (round, payloads) in result.iter().enumerate() {
                let expect: Vec<M61> = (0..3)
                    .map(|i| M61::from_u64(i * 1000 + round as u64))
                    .collect();
                assert_eq!(payloads, &expect);
            }
        }
    }

    #[test]
    fn exhausted_retransmit_budget_is_a_typed_error() {
        // With drop probability ~1 every attempt fails, so the first real
        // message must exhaust its budget and name its destination.
        let spec = FaultSpec::seeded(3)
            .with_drop(0.999_999)
            .with_retransmit(Duration::from_micros(1), 2);
        let mut endpoints = mesh::<M61>(2);
        let ep = endpoints.remove(0);
        let mut t = FaultTransport::new(Box::new(ep), spec);
        let err = t.broadcast(vec![M61::ONE]).unwrap_err();
        assert_eq!(
            err,
            TransportError::RetransmitExhausted {
                party: 1,
                round: 0,
                attempts: 3,
            }
        );
    }

    #[test]
    fn retransmits_surface_as_events() {
        let spec = FaultSpec::seeded(11)
            .with_drop(0.5)
            .with_retransmit(Duration::from_micros(50), 64);
        // Find a round where the schedule actually drops something.
        let mut witnessed = false;
        for round in 0..64 {
            if schedule(&spec, 0, 1, round).dropped_attempts > 0 {
                witnessed = true;
                break;
            }
        }
        assert!(witnessed, "expected at least one drop in 64 rounds");

        let endpoints = mesh::<M61>(2);
        let event_counts: Vec<usize> = thread::scope(|s| {
            let handles: Vec<_> = endpoints
                .into_iter()
                .map(|ep| {
                    let spec = spec.clone();
                    s.spawn(move || {
                        let mut t = FaultTransport::new(Box::new(ep), spec);
                        for _ in 0..64 {
                            t.broadcast(vec![M61::ONE]).unwrap();
                        }
                        t.drain_events()
                            .iter()
                            .filter(|e| e.kind == "retransmit")
                            .count()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(event_counts.iter().sum::<usize>() > 0);
    }
}
