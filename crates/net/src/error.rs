//! Typed transport failures.
//!
//! Every error names the peer party it concerns and, where meaningful, the
//! synchronous round in which it was observed, so a failed BGW run can be
//! diagnosed ("party 2 crashed in round 3") instead of aborting with a
//! poisoned-thread panic.

use std::fmt;
use std::time::Duration;

/// Wire-format decoding failure (see [`crate::wire`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer length is not a multiple of the field element width.
    RaggedBuffer {
        /// Buffer length in bytes.
        len: usize,
        /// Canonical element width in bytes.
        width: usize,
    },
    /// An element's little-endian value is not a canonical representative
    /// (it is `>=` the field modulus).
    NonCanonical {
        /// The decoded (non-canonical) value.
        value: u128,
        /// The field modulus it was checked against.
        modulus: u128,
    },
    /// A length-prefixed frame announced an implausible payload size.
    OversizedFrame {
        /// The announced payload length in bytes.
        len: usize,
        /// The largest frame the transport accepts.
        max: usize,
    },
    /// The versioned trace-context header prefixing a frame payload is
    /// malformed: the buffer is too short for the announced version, or
    /// the version byte is unknown.
    BadTraceHeader {
        /// The version byte observed (0 when the buffer was empty).
        version: u8,
        /// Bytes available when header decoding started.
        remaining: usize,
    },
    /// A round-batched [`crate::wire::Frame`] ended before its announced
    /// content: the buffer is too short for the element-count prefix, or
    /// for the payload the count announces.
    TruncatedFrame {
        /// Bytes actually available.
        len: usize,
        /// Bytes the frame layout required at this point.
        needed: usize,
    },
    /// A round-batched [`crate::wire::Frame`]'s element-count prefix
    /// disagrees with its payload length (trailing garbage after the
    /// announced elements).
    FrameCountMismatch {
        /// The element count the prefix announced.
        declared: usize,
        /// Payload bytes actually present after the header.
        payload_bytes: usize,
        /// Canonical element width in bytes.
        width: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::RaggedBuffer { len, width } => write!(
                f,
                "buffer length {len} is not a multiple of the element width {width}"
            ),
            WireError::NonCanonical { value, modulus } => {
                write!(f, "non-canonical element {value} >= modulus {modulus}")
            }
            WireError::OversizedFrame { len, max } => {
                write!(
                    f,
                    "frame announces {len} bytes, exceeding the {max}-byte cap"
                )
            }
            WireError::BadTraceHeader { version, remaining } => {
                write!(
                    f,
                    "malformed trace header (version byte {version}, {remaining} bytes available)"
                )
            }
            WireError::TruncatedFrame { len, needed } => {
                write!(f, "frame truncated: {len} bytes available, {needed} needed")
            }
            WireError::FrameCountMismatch {
                declared,
                payload_bytes,
                width,
            } => write!(
                f,
                "frame announces {declared} elements ({} bytes at width {width}) but carries {payload_bytes} payload bytes",
                declared * width
            ),
        }
    }
}

impl std::error::Error for WireError {}

/// A failure in the party-to-party transport layer.
///
/// The `party` field always identifies the *peer* the local endpoint was
/// talking to when the failure surfaced — except for [`Crashed`] and
/// [`ConnectFailed`], where it names the crashed / unreachable party itself.
///
/// [`Crashed`]: TransportError::Crashed
/// [`ConnectFailed`]: TransportError::ConnectFailed
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The link to `party` closed mid-protocol (its endpoint dropped, or
    /// the socket hit EOF / a broken pipe).
    Disconnected { party: usize, round: u64 },
    /// No payload arrived from `party` within the read timeout.
    Timeout {
        party: usize,
        round: u64,
        /// The timeout that elapsed.
        after: Duration,
    },
    /// `party` was taken down by the fault plan at `round`
    /// (see [`crate::fault::FaultSpec::crash`]).
    Crashed { party: usize, round: u64 },
    /// Every transmission attempt to `party` in `round` was dropped,
    /// exhausting the retransmit budget.
    RetransmitExhausted {
        party: usize,
        round: u64,
        /// Total attempts made (initial send plus retransmits).
        attempts: u32,
    },
    /// A connection to `party` could not be established within the
    /// bounded exponential-backoff retry budget.
    ConnectFailed {
        party: usize,
        /// Connection attempts made.
        attempts: u32,
        detail: String,
    },
    /// Bytes received from `party` failed wire-format validation.
    Wire {
        party: usize,
        round: u64,
        source: WireError,
    },
    /// Any other I/O failure on the link to/from `party`.
    Io {
        party: usize,
        round: u64,
        detail: String,
    },
}

impl TransportError {
    /// The party this error concerns (the offending peer, or for
    /// [`TransportError::Crashed`] the crashed party itself).
    pub fn party(&self) -> usize {
        match self {
            TransportError::Disconnected { party, .. }
            | TransportError::Timeout { party, .. }
            | TransportError::Crashed { party, .. }
            | TransportError::RetransmitExhausted { party, .. }
            | TransportError::ConnectFailed { party, .. }
            | TransportError::Wire { party, .. }
            | TransportError::Io { party, .. } => *party,
        }
    }

    /// A stable machine-readable classification of the failure, for
    /// structured reports (the audit harness buckets fuzz outcomes by it).
    pub fn kind(&self) -> &'static str {
        match self {
            TransportError::Disconnected { .. } => "disconnected",
            TransportError::Timeout { .. } => "timeout",
            TransportError::Crashed { .. } => "crashed",
            TransportError::RetransmitExhausted { .. } => "retransmit_exhausted",
            TransportError::ConnectFailed { .. } => "connect_failed",
            TransportError::Wire { .. } => "wire",
            TransportError::Io { .. } => "io",
        }
    }

    /// The synchronous round the failure was observed in, if the error
    /// occurred after the mesh was up (`None` for connect-time failures).
    pub fn round(&self) -> Option<u64> {
        match self {
            TransportError::Disconnected { round, .. }
            | TransportError::Timeout { round, .. }
            | TransportError::Crashed { round, .. }
            | TransportError::RetransmitExhausted { round, .. }
            | TransportError::Wire { round, .. }
            | TransportError::Io { round, .. } => Some(*round),
            TransportError::ConnectFailed { .. } => None,
        }
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Disconnected { party, round } => {
                write!(f, "party {party} disconnected in round {round}")
            }
            TransportError::Timeout {
                party,
                round,
                after,
            } => write!(
                f,
                "no payload from party {party} in round {round} within {after:?}"
            ),
            TransportError::Crashed { party, round } => {
                write!(f, "party {party} crashed in round {round}")
            }
            TransportError::RetransmitExhausted {
                party,
                round,
                attempts,
            } => write!(
                f,
                "all {attempts} transmission attempts to party {party} dropped in round {round}"
            ),
            TransportError::ConnectFailed {
                party,
                attempts,
                detail,
            } => write!(
                f,
                "could not connect to party {party} after {attempts} attempts: {detail}"
            ),
            TransportError::Wire {
                party,
                round,
                source,
            } => write!(
                f,
                "malformed bytes from party {party} in round {round}: {source}"
            ),
            TransportError::Io {
                party,
                round,
                detail,
            } => write!(
                f,
                "i/o error on link to party {party} in round {round}: {detail}"
            ),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Wire { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_name_party_and_round() {
        let e = TransportError::Crashed { party: 2, round: 3 };
        assert_eq!(e.party(), 2);
        assert_eq!(e.round(), Some(3));
        let shown = e.to_string();
        assert!(shown.contains("party 2"), "{shown}");
        assert!(shown.contains("round 3"), "{shown}");
    }

    #[test]
    fn kind_is_stable_and_distinct() {
        let crashed = TransportError::Crashed { party: 0, round: 0 };
        let dropped = TransportError::RetransmitExhausted {
            party: 0,
            round: 0,
            attempts: 11,
        };
        assert_eq!(crashed.kind(), "crashed");
        assert_eq!(dropped.kind(), "retransmit_exhausted");
        assert_ne!(crashed.kind(), dropped.kind());
    }

    #[test]
    fn connect_failures_have_no_round() {
        let e = TransportError::ConnectFailed {
            party: 1,
            attempts: 6,
            detail: "refused".into(),
        };
        assert_eq!(e.party(), 1);
        assert_eq!(e.round(), None);
    }

    #[test]
    fn wire_error_is_chained_as_source() {
        let e = TransportError::Wire {
            party: 0,
            round: 7,
            source: WireError::RaggedBuffer { len: 9, width: 8 },
        };
        let src = std::error::Error::source(&e).expect("wire source");
        assert!(src.to_string().contains("multiple"));
    }
}
