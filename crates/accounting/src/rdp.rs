//! RDP curves over a grid of integer Rényi orders, with composition
//! (Lemma 10) and conversion to `(eps, delta)`-DP (Lemma 9).

use serde::{Deserialize, Serialize};

use crate::conversion::rdp_to_dp;

/// An RDP guarantee tabulated over integer orders: `taus[i]` is the RDP
/// parameter at order `alphas[i]`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RdpCurve {
    alphas: Vec<u64>,
    taus: Vec<f64>,
}

impl RdpCurve {
    /// Tabulate `tau(alpha)` over `alphas`.
    pub fn from_fn<F: Fn(u64) -> f64>(alphas: &[u64], tau: F) -> Self {
        assert!(!alphas.is_empty(), "alpha grid must not be empty");
        assert!(alphas.iter().all(|&a| a >= 2), "orders must be >= 2");
        let taus = alphas
            .iter()
            .map(|&a| {
                let t = tau(a);
                assert!(t >= 0.0 && t.is_finite(), "tau({a}) = {t} invalid");
                t
            })
            .collect();
        RdpCurve {
            alphas: alphas.to_vec(),
            taus,
        }
    }

    /// The zero curve (a mechanism that releases nothing).
    pub fn zero(alphas: &[u64]) -> Self {
        Self::from_fn(alphas, |_| 0.0)
    }

    /// The orders of this curve.
    pub fn alphas(&self) -> &[u64] {
        &self.alphas
    }

    /// `tau` at grid position of order `alpha`. Panics if not on the grid.
    pub fn tau_at(&self, alpha: u64) -> f64 {
        let i = self
            .alphas
            .iter()
            .position(|&a| a == alpha)
            .unwrap_or_else(|| panic!("order {alpha} not on grid"));
        self.taus[i]
    }

    /// Lemma 10: adaptive composition adds RDP curves pointwise.
    pub fn compose(&self, other: &RdpCurve) -> RdpCurve {
        assert_eq!(self.alphas, other.alphas, "compose: mismatched alpha grids");
        RdpCurve {
            alphas: self.alphas.clone(),
            taus: self
                .taus
                .iter()
                .zip(&other.taus)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// Compose this mechanism with itself `rounds` times.
    pub fn compose_rounds(&self, rounds: u32) -> RdpCurve {
        RdpCurve {
            alphas: self.alphas.clone(),
            taus: self.taus.iter().map(|t| t * rounds as f64).collect(),
        }
    }

    /// Lemma 9 optimized over the grid: the best `(eps, alpha)` at `delta`.
    pub fn to_epsilon(&self, delta: f64) -> (f64, u64) {
        let mut best = (f64::INFINITY, self.alphas[0]);
        for (&a, &t) in self.alphas.iter().zip(&self.taus) {
            let eps = rdp_to_dp(a as f64, t, delta);
            if eps < best.0 {
                best = (eps, a);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::default_alpha_grid;
    use crate::gaussian::gaussian_rdp;

    #[test]
    fn composition_adds() {
        let g = default_alpha_grid();
        let c1 = RdpCurve::from_fn(&g, |a| a as f64 * 0.01);
        let c2 = RdpCurve::from_fn(&g, |a| a as f64 * 0.02);
        let c = c1.compose(&c2);
        assert!((c.tau_at(10) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn compose_rounds_matches_repeated_compose() {
        let g = default_alpha_grid();
        let c = RdpCurve::from_fn(&g, |a| gaussian_rdp(a as f64, 1.0, 5.0));
        let r3 = c.compose_rounds(3);
        let manual = c.compose(&c).compose(&c);
        for &a in &g[..10] {
            assert!((r3.tau_at(a) - manual.tau_at(a)).abs() < 1e-12);
        }
    }

    #[test]
    fn composition_degrades_epsilon() {
        let g = default_alpha_grid();
        let c = RdpCurve::from_fn(&g, |a| gaussian_rdp(a as f64, 1.0, 10.0));
        let (e1, _) = c.to_epsilon(1e-5);
        let (e10, _) = c.compose_rounds(10).to_epsilon(1e-5);
        assert!(e10 > e1);
        // Sub-linear in rounds (RDP composes better than basic composition).
        assert!(e10 < 10.0 * e1);
    }

    #[test]
    fn zero_curve_epsilon_is_small() {
        let g = default_alpha_grid();
        let (e, _) = RdpCurve::zero(&g).to_epsilon(1e-5);
        assert!(e < 0.1, "eps = {e}");
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn compose_rejects_mismatched_grids() {
        let c1 = RdpCurve::zero(&[2, 3]);
        let c2 = RdpCurve::zero(&[2, 4]);
        c1.compose(&c2);
    }
}
