//! Lemma 9 (Canonne-Kamath-Steinke): converting RDP to `(eps, delta)`-DP.
//!
//! A mechanism satisfying `(alpha, tau)`-RDP satisfies `(eps, delta)`-DP for
//! any `delta > 0` with
//!
//! ```text
//! eps = tau + ( log(1/delta) + (alpha-1) log(1 - 1/alpha) - log(alpha) ) / (alpha - 1)
//! ```
//!
//! The best `eps` for a given RDP *curve* is obtained by minimizing over the
//! Rényi order.

/// Lemma 9 for a single order.
///
/// Clamped at 0: for tiny `tau` and large `alpha` the raw formula can dip
/// below zero, and `(eps, delta)`-DP is only meaningful for `eps >= 0`
/// (any mechanism satisfying the raw negative value satisfies `(0,
/// delta)`-DP a fortiori).
pub fn rdp_to_dp(alpha: f64, tau: f64, delta: f64) -> f64 {
    assert!(alpha > 1.0, "RDP order must exceed 1, got {alpha}");
    assert!(
        delta > 0.0 && delta < 1.0,
        "delta must be in (0,1), got {delta}"
    );
    assert!(tau >= 0.0 && !tau.is_nan(), "tau must be non-negative");
    let eps = tau
        + ((1.0 / delta).ln() + (alpha - 1.0) * (1.0 - 1.0 / alpha).ln() - alpha.ln())
            / (alpha - 1.0);
    eps.max(0.0)
}

/// Minimize Lemma 9 over a grid of integer orders given an RDP curve
/// `tau(alpha)`. Returns `(eps, best_alpha)`.
pub fn best_epsilon<F>(tau: F, delta: f64, alphas: &[u64]) -> (f64, u64)
where
    F: Fn(u64) -> f64,
{
    assert!(!alphas.is_empty(), "alpha grid must not be empty");
    let mut best = (f64::INFINITY, alphas[0]);
    for &a in alphas {
        let eps = rdp_to_dp(a as f64, tau(a), delta);
        if eps < best.0 {
            best = (eps, a);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::gaussian_rdp;

    #[test]
    fn formula_sanity() {
        // tau = 0 gives eps = (log(1/delta) + (a-1)log(1-1/a) - log a)/(a-1),
        // which tends to 0 as alpha grows (for fixed delta the log(1/delta)
        // term is divided by alpha-1).
        let e_small = rdp_to_dp(2.0, 0.0, 1e-5);
        let e_big = rdp_to_dp(10_000.0, 0.0, 1e-5);
        assert!(e_big < e_small);
        assert!(e_big < 0.01);
    }

    #[test]
    fn gaussian_conversion_is_reasonable() {
        // sigma chosen so the classical (non-analytic) Gaussian mechanism
        // with delta = 1e-5 has eps ~ 1: sigma = sqrt(2 ln(1.25/delta))/eps.
        let sigma = (2.0_f64 * (1.25e5_f64).ln()).sqrt();
        let alphas: Vec<u64> = (2..=512).collect();
        let (eps, _) = best_epsilon(|a| gaussian_rdp(a as f64, 1.0, sigma), 1e-5, &alphas);
        // RDP conversion should give eps in the same ballpark (it is known
        // to be slightly loose or tight depending on the regime).
        assert!(eps > 0.3 && eps < 1.5, "eps = {eps}");
    }

    #[test]
    fn best_epsilon_picks_interior_alpha() {
        let sigma = 20.0;
        let alphas: Vec<u64> = (2..=512).collect();
        let (_, a) = best_epsilon(|a| gaussian_rdp(a as f64, 1.0, sigma), 1e-5, &alphas);
        assert!(a > 2 && a < 512, "alpha = {a} should be interior");
    }

    #[test]
    fn monotone_in_tau() {
        assert!(rdp_to_dp(4.0, 1.0, 1e-5) < rdp_to_dp(4.0, 2.0, 1e-5));
    }

    #[test]
    fn monotone_in_delta() {
        assert!(rdp_to_dp(4.0, 1.0, 1e-3) < rdp_to_dp(4.0, 1.0, 1e-9));
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn rejects_bad_delta() {
        rdp_to_dp(2.0, 1.0, 0.0);
    }

    #[test]
    fn never_negative_even_where_raw_formula_dips_below_zero() {
        // delta = 0.5, alpha = 10^4, tau = 0: the raw Lemma 9 value is
        // negative (log(alpha) dominates); the conversion must clamp to 0.
        let raw = ((1.0f64 / 0.5).ln() + 9_999.0 * (1.0 - 1e-4f64).ln() - (1e4f64).ln()) / 9_999.0;
        assert!(
            raw < 0.0,
            "test premise: raw formula is negative, got {raw}"
        );
        assert_eq!(rdp_to_dp(1e4, 0.0, 0.5), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::skellam::{skellam_rdp, Sensitivity};
    use proptest::prelude::*;

    proptest! {
        /// The conversion never produces a negative epsilon or NaN, for any
        /// valid (alpha, tau, delta).
        #[test]
        fn prop_never_negative_or_nan(
            alpha in 2u64..100_000,
            tau in 0.0f64..1e6,
            delta_exp in 1.0f64..30.0,
        ) {
            let eps = rdp_to_dp(alpha as f64, tau, 10f64.powf(-delta_exp));
            prop_assert!(eps >= 0.0);
            prop_assert!(!eps.is_nan());
        }

        /// Monotone in tau: a looser RDP bound never converts to a tighter
        /// (eps, delta) guarantee.
        #[test]
        fn prop_monotone_in_tau(
            alpha in 2u64..1000,
            tau in 0.0f64..100.0,
            bump in 0.0f64..10.0,
        ) {
            let a = alpha as f64;
            prop_assert!(rdp_to_dp(a, tau + bump, 1e-5) >= rdp_to_dp(a, tau, 1e-5));
        }

        /// Antitone in delta: demanding a smaller delta can only increase
        /// the converted epsilon.
        #[test]
        fn prop_antitone_in_delta(
            alpha in 2u64..1000,
            tau in 0.0f64..100.0,
            d1_exp in 1.0f64..20.0,
            extra in 0.0f64..10.0,
        ) {
            let a = alpha as f64;
            let d_big = 10f64.powf(-d1_exp);
            let d_small = 10f64.powf(-(d1_exp + extra));
            prop_assert!(rdp_to_dp(a, tau, d_small) >= rdp_to_dp(a, tau, d_big));
        }

        /// Composed with the Skellam curve, the best epsilon is antitone in
        /// mu (more noise never means less privacy) and monotone in the
        /// sensitivity; the returned alpha stays inside the grid.
        #[test]
        fn prop_best_epsilon_antitone_in_mu_over_skellam_curve(
            d in 0.5f64..100.0,
            mu in 10.0f64..1e9,
            factor in 1.1f64..100.0,
        ) {
            let alphas: Vec<u64> = (2..=128).collect();
            let s = Sensitivity::new(d, d);
            let (e1, a1) = best_epsilon(|a| skellam_rdp(a, s, mu), 1e-5, &alphas);
            let (e2, a2) = best_epsilon(|a| skellam_rdp(a, s, mu * factor), 1e-5, &alphas);
            prop_assert!(e1 >= 0.0 && e2 >= 0.0);
            prop_assert!(!e1.is_nan() && !e2.is_nan());
            prop_assert!(e2 <= e1 + 1e-12, "mu up, eps up: {e1} -> {e2}");
            prop_assert!(alphas.contains(&a1) && alphas.contains(&a2));
        }

        /// Round-trip through the curve machinery: converting any Skellam
        /// RDP curve at any delta yields a finite, non-negative epsilon.
        #[test]
        fn prop_skellam_conversion_always_finite(
            d in 0.1f64..1e4,
            mu in 1.0f64..1e12,
            delta_exp in 1.0f64..20.0,
        ) {
            let alphas: Vec<u64> = (2..=256).collect();
            let s = Sensitivity::new(d, d);
            let (eps, _) = best_epsilon(|a| skellam_rdp(a, s, mu), 10f64.powf(-delta_exp), &alphas);
            prop_assert!(eps.is_finite());
            prop_assert!(eps >= 0.0);
        }
    }
}
