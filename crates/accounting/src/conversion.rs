//! Lemma 9 (Canonne-Kamath-Steinke): converting RDP to `(eps, delta)`-DP.
//!
//! A mechanism satisfying `(alpha, tau)`-RDP satisfies `(eps, delta)`-DP for
//! any `delta > 0` with
//!
//! ```text
//! eps = tau + ( log(1/delta) + (alpha-1) log(1 - 1/alpha) - log(alpha) ) / (alpha - 1)
//! ```
//!
//! The best `eps` for a given RDP *curve* is obtained by minimizing over the
//! Rényi order.

/// Lemma 9 for a single order.
pub fn rdp_to_dp(alpha: f64, tau: f64, delta: f64) -> f64 {
    assert!(alpha > 1.0, "RDP order must exceed 1, got {alpha}");
    assert!(
        delta > 0.0 && delta < 1.0,
        "delta must be in (0,1), got {delta}"
    );
    assert!(tau >= 0.0, "tau must be non-negative");
    tau + ((1.0 / delta).ln() + (alpha - 1.0) * (1.0 - 1.0 / alpha).ln() - alpha.ln())
        / (alpha - 1.0)
}

/// Minimize Lemma 9 over a grid of integer orders given an RDP curve
/// `tau(alpha)`. Returns `(eps, best_alpha)`.
pub fn best_epsilon<F>(tau: F, delta: f64, alphas: &[u64]) -> (f64, u64)
where
    F: Fn(u64) -> f64,
{
    assert!(!alphas.is_empty(), "alpha grid must not be empty");
    let mut best = (f64::INFINITY, alphas[0]);
    for &a in alphas {
        let eps = rdp_to_dp(a as f64, tau(a), delta);
        if eps < best.0 {
            best = (eps, a);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::gaussian_rdp;

    #[test]
    fn formula_sanity() {
        // tau = 0 gives eps = (log(1/delta) + (a-1)log(1-1/a) - log a)/(a-1),
        // which tends to 0 as alpha grows (for fixed delta the log(1/delta)
        // term is divided by alpha-1).
        let e_small = rdp_to_dp(2.0, 0.0, 1e-5);
        let e_big = rdp_to_dp(10_000.0, 0.0, 1e-5);
        assert!(e_big < e_small);
        assert!(e_big < 0.01);
    }

    #[test]
    fn gaussian_conversion_is_reasonable() {
        // sigma chosen so the classical (non-analytic) Gaussian mechanism
        // with delta = 1e-5 has eps ~ 1: sigma = sqrt(2 ln(1.25/delta))/eps.
        let sigma = (2.0_f64 * (1.25e5_f64).ln()).sqrt();
        let alphas: Vec<u64> = (2..=512).collect();
        let (eps, _) = best_epsilon(|a| gaussian_rdp(a as f64, 1.0, sigma), 1e-5, &alphas);
        // RDP conversion should give eps in the same ballpark (it is known
        // to be slightly loose or tight depending on the regime).
        assert!(eps > 0.3 && eps < 1.5, "eps = {eps}");
    }

    #[test]
    fn best_epsilon_picks_interior_alpha() {
        let sigma = 20.0;
        let alphas: Vec<u64> = (2..=512).collect();
        let (_, a) = best_epsilon(|a| gaussian_rdp(a as f64, 1.0, sigma), 1e-5, &alphas);
        assert!(a > 2 && a < 512, "alpha = {a} should be interior");
    }

    #[test]
    fn monotone_in_tau() {
        assert!(rdp_to_dp(4.0, 1.0, 1e-5) < rdp_to_dp(4.0, 2.0, 1e-5));
    }

    #[test]
    fn monotone_in_delta() {
        assert!(rdp_to_dp(4.0, 1.0, 1e-3) < rdp_to_dp(4.0, 1.0, 1e-9));
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn rejects_bad_delta() {
        rdp_to_dp(2.0, 1.0, 0.0);
    }
}
