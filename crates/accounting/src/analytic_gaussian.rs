//! Lemma 8 (Balle-Wang): exact calibration of the Gaussian mechanism.
//!
//! The Gaussian mechanism with sensitivity `S` and noise `sigma` satisfies
//! `(eps, delta)`-DP iff
//!
//! ```text
//! delta >= Phi(S/(2 sigma) - eps sigma / S) - e^eps * Phi(-S/(2 sigma) - eps sigma / S)
//! ```
//!
//! where `Phi` is the standard normal CDF (Balle & Wang 2018, Theorem 8 —
//! the same characterization that Lemma 8 of the paper expresses through
//! `erfc`). We calibrate `sigma` by bisection on this exact expression,
//! which is monotone decreasing in `sigma`.

use sqm_sampling::special::normal_cdf;

/// The exact `delta` achieved by the Gaussian mechanism at `(eps, sigma, s)`.
pub fn gaussian_delta(eps: f64, sigma: f64, s: f64) -> f64 {
    assert!(eps > 0.0 && sigma > 0.0 && s > 0.0);
    let a = s / (2.0 * sigma);
    let b = eps * sigma / s;
    normal_cdf(a - b) - eps.exp() * normal_cdf(-a - b)
}

/// The minimal `sigma` such that the Gaussian mechanism with L2 sensitivity
/// `s` satisfies `(eps, delta)`-DP (Lemma 8).
pub fn analytic_gaussian_sigma(eps: f64, delta: f64, s: f64) -> f64 {
    assert!(eps > 0.0, "eps must be positive, got {eps}");
    assert!(
        delta > 0.0 && delta < 1.0,
        "delta must be in (0,1), got {delta}"
    );
    assert!(s > 0.0, "sensitivity must be positive, got {s}");

    // Bracket: delta(sigma) is decreasing; find hi with delta(hi) <= delta.
    let mut lo = 1e-12 * s;
    let mut hi = s; // sigma = s is usually already quite private for eps >= ~1
    while gaussian_delta(eps, hi, s) > delta {
        hi *= 2.0;
        assert!(hi.is_finite(), "failed to bracket sigma");
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if gaussian_delta(eps, mid, s) > delta {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo) / hi < 1e-12 {
            break;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn achieved_delta_matches_target() {
        for (eps, delta) in [(0.5, 1e-5), (1.0, 1e-5), (4.0, 1e-6), (8.0, 1e-5)] {
            let sigma = analytic_gaussian_sigma(eps, delta, 1.0);
            let d = gaussian_delta(eps, sigma, 1.0);
            assert!(d <= delta * (1.0 + 1e-6), "({eps},{delta}): d={d}");
            // Slightly less noise must violate the target.
            let d2 = gaussian_delta(eps, sigma * 0.99, 1.0);
            assert!(d2 > delta, "({eps},{delta}): calibration not tight");
        }
    }

    #[test]
    fn beats_classical_bound() {
        // Classical: sigma = sqrt(2 ln(1.25/delta)) / eps. The analytic
        // mechanism never needs more noise.
        for eps in [0.25, 0.5, 1.0] {
            let delta = 1e-5f64;
            let classical = (2.0 * (1.25 / delta).ln()).sqrt() / eps;
            let analytic = analytic_gaussian_sigma(eps, delta, 1.0);
            assert!(analytic <= classical, "eps={eps}: {analytic} > {classical}");
        }
    }

    #[test]
    fn scales_linearly_with_sensitivity() {
        let s1 = analytic_gaussian_sigma(1.0, 1e-5, 1.0);
        let s7 = analytic_gaussian_sigma(1.0, 1e-5, 7.0);
        assert!((s7 / s1 - 7.0).abs() < 1e-6);
    }

    #[test]
    fn monotone_in_eps_and_delta() {
        let base = analytic_gaussian_sigma(1.0, 1e-5, 1.0);
        assert!(analytic_gaussian_sigma(2.0, 1e-5, 1.0) < base);
        assert!(analytic_gaussian_sigma(1.0, 1e-7, 1.0) > base);
    }

    #[test]
    fn large_eps_small_sigma() {
        let sigma = analytic_gaussian_sigma(32.0, 1e-5, 1.0);
        assert!(sigma < 0.5, "sigma={sigma}");
    }
}
