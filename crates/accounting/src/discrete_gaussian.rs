//! RDP of the discrete Gaussian mechanism (Canonne-Kamath-Steinke 2020) —
//! the alternative integer-valued noise used by the distributed discrete
//! Gaussian mechanism \[39\] that the paper's Skellam choice is measured
//! against.
//!
//! `N_Z(0, sigma^2)` satisfies `(Delta^2 / (2 sigma^2))`-concentrated DP,
//! hence `(alpha, alpha * Delta^2 / (2 sigma^2))`-RDP — the same curve as
//! the continuous Gaussian. The catch in the *distributed* setting: sums of
//! independent discrete Gaussians are **not** discrete Gaussian, so the
//! per-client decomposition that makes Skellam's analysis exact (closure
//! under convolution) only holds approximately for discrete Gaussians, and
//! \[39\] must spend extra analysis (and a utility haircut) to bound the
//! divergence. Skellam pays a small second-order RDP term instead
//! (Lemma 1's `min(...)` correction) but decomposes exactly.

use crate::gaussian::gaussian_rdp;

/// RDP of order `alpha` for the (single-party) discrete Gaussian mechanism
/// with L2 sensitivity `delta2` and parameter `sigma`.
pub fn discrete_gaussian_rdp(alpha: f64, delta2: f64, sigma: f64) -> f64 {
    gaussian_rdp(alpha, delta2, sigma)
}

/// Compare the calibrated noise *variances* of the two integer mechanisms
/// at the same `(eps, delta)` target and sensitivity: returns
/// `(skellam_variance = 2 mu, discrete_gaussian_variance = sigma^2)`.
///
/// As the sensitivity grows (fine quantization), the ratio tends to 1 —
/// Skellam's second-order RDP penalty vanishes (the paper's "comparable to
/// Gaussian" claim, quantified).
pub fn compare_integer_noise_variances(
    eps: f64,
    delta: f64,
    sens: crate::skellam::Sensitivity,
) -> (f64, f64) {
    let target = crate::calibration::CalibrationTarget::new(eps, delta);
    let mu = crate::calibration::calibrate_skellam_mu(target, sens, 1, 1.0);
    let sigma = crate::calibration::calibrate_gaussian_sigma(target, sens.l2, 1, 1.0);
    (2.0 * mu, sigma * sigma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skellam::Sensitivity;

    #[test]
    fn matches_continuous_gaussian_curve() {
        assert_eq!(discrete_gaussian_rdp(4.0, 2.0, 2.0), 2.0);
    }

    #[test]
    fn skellam_variance_approaches_discrete_gaussian() {
        // Small sensitivity: Skellam pays its second-order term.
        let (sk_small, dg_small) =
            compare_integer_noise_variances(1.0, 1e-5, Sensitivity::new(1.0, 1.0));
        // Large sensitivity (fine quantization): overhead vanishes.
        let (sk_big, dg_big) =
            compare_integer_noise_variances(1.0, 1e-5, Sensitivity::new(1e4, 1e4));
        let ratio_small = sk_small / dg_small;
        let ratio_big = sk_big / dg_big;
        assert!(ratio_small >= ratio_big, "{ratio_small} vs {ratio_big}");
        assert!(
            (ratio_big - 1.0).abs() < 0.02,
            "fine-grained Skellam should match Gaussian variance: {ratio_big}"
        );
        assert!(
            ratio_small < 2.0,
            "even coarse Skellam is within 2x: {ratio_small}"
        );
    }
}
