//! Lemma 11 (Zhu-Wang): privacy amplification by Poisson subsampling for
//! integer Rényi orders.
//!
//! If the base mechanism satisfies `(l, tau_l)`-RDP for `l = 2..=alpha`, then
//! running it on a uniformly-subsampled batch (each record kept with
//! probability `q`) satisfies `(alpha, tau)`-RDP with
//!
//! ```text
//! tau = 1/(alpha-1) * log( (1-q)^(alpha-1) (alpha q - q + 1)
//!        + sum_{l=2}^{alpha} C(alpha, l) (1-q)^(alpha-l) q^l e^{(l-1) tau_l} )
//! ```
//!
//! All terms are assembled in log-space (`log_sum_exp`), so very large
//! `tau_l` (tiny noise) and very small `q` never overflow.

use sqm_sampling::special::{ln_binomial, log_sum_exp};

/// Lemma 11 for one integer order `alpha >= 2`.
///
/// `base_rdp(l)` must return the base mechanism's RDP `tau_l` at integer
/// order `l` (called for `l = 2..=alpha`).
pub fn subsampled_rdp<F>(alpha: u64, q: f64, base_rdp: F) -> f64
where
    F: Fn(u64) -> f64,
{
    assert!(
        alpha >= 2,
        "Lemma 11 requires integer alpha >= 2, got {alpha}"
    );
    assert!(
        (0.0..=1.0).contains(&q),
        "sampling rate must be in [0,1], got {q}"
    );
    if q == 0.0 {
        return 0.0;
    }
    if q == 1.0 {
        // No amplification: the subsample is the full dataset.
        return base_rdp(alpha);
    }
    let a = alpha as f64;
    let ln_1mq = (1.0 - q).ln();
    let ln_q = q.ln();

    let mut log_terms = Vec::with_capacity(alpha as usize);
    // l = 0 and l = 1 terms combined: (1-q)^(alpha-1) (alpha q - q + 1).
    log_terms.push((a - 1.0) * ln_1mq + (a * q - q + 1.0).ln());
    for l in 2..=alpha {
        let lf = l as f64;
        let tau_l = base_rdp(l);
        assert!(tau_l >= 0.0, "base RDP must be non-negative (l={l})");
        log_terms.push(ln_binomial(alpha, l) + (a - lf) * ln_1mq + lf * ln_q + (lf - 1.0) * tau_l);
    }
    log_sum_exp(&log_terms) / (a - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::gaussian_rdp;

    #[test]
    fn zero_rate_means_zero_privacy_loss() {
        assert_eq!(subsampled_rdp(8, 0.0, |_| 100.0), 0.0);
    }

    #[test]
    fn full_rate_means_no_amplification() {
        let tau = subsampled_rdp(8, 1.0, |l| l as f64 * 0.01);
        assert_eq!(tau, 0.08);
    }

    #[test]
    fn amplification_shrinks_privacy_loss() {
        let base = |l: u64| gaussian_rdp(l as f64, 1.0, 2.0);
        let full = base(4);
        let amp = subsampled_rdp(4, 0.01, base);
        assert!(amp < full / 10.0, "amp={amp} full={full}");
    }

    #[test]
    fn small_q_quadratic_regime() {
        // For small q and moderate noise, tau ~ q^2 * alpha * something:
        // halving q should shrink tau by ~4x.
        let base = |l: u64| gaussian_rdp(l as f64, 1.0, 4.0);
        let t1 = subsampled_rdp(2, 0.02, base);
        let t2 = subsampled_rdp(2, 0.01, base);
        let ratio = t1 / t2;
        assert!((ratio - 4.0).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    fn monotone_in_q() {
        let base = |l: u64| gaussian_rdp(l as f64, 1.0, 2.0);
        let mut last = 0.0;
        for q in [0.001, 0.01, 0.1, 0.5, 0.9] {
            let t = subsampled_rdp(8, q, base);
            assert!(t >= last, "q={q}");
            last = t;
        }
    }

    #[test]
    fn huge_base_tau_does_not_overflow() {
        // e^(alpha * 1e6) overflows f64; log-space assembly must survive.
        let t = subsampled_rdp(64, 0.001, |_| 1e6);
        assert!(t.is_finite());
        assert!(t > 0.0);
    }

    #[test]
    fn tau_nonnegative() {
        let base = |l: u64| gaussian_rdp(l as f64, 1.0, 100.0);
        for alpha in [2u64, 3, 17, 128] {
            let t = subsampled_rdp(alpha, 0.05, base);
            assert!(t >= 0.0, "alpha={alpha} tau={t}");
        }
    }

    #[test]
    #[should_panic(expected = "sampling rate")]
    fn rejects_bad_rate() {
        subsampled_rdp(2, 1.5, |_| 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::gaussian::gaussian_rdp;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn prop_amplification_never_hurts(
            alpha in 2u64..64,
            q in 0.0001f64..1.0,
            sigma in 0.1f64..100.0,
        ) {
            let base = |l: u64| gaussian_rdp(l as f64, 1.0, sigma);
            let amplified = subsampled_rdp(alpha, q, base);
            prop_assert!(amplified <= base(alpha) * (1.0 + 1e-9) + 1e-12,
                "q={q} sigma={sigma}: {amplified} > {}", base(alpha));
        }

        #[test]
        fn prop_nonnegative(
            alpha in 2u64..64,
            q in 0.0f64..1.0,
            sigma in 0.1f64..100.0,
        ) {
            let t = subsampled_rdp(alpha, q, |l| gaussian_rdp(l as f64, 1.0, sigma));
            prop_assert!(t >= -1e-12);
        }
    }
}
