//! Noise calibration: the inverse problem every experiment solves.
//!
//! Given a target `(eps, delta)`, a number of (composed) rounds, and an
//! optional Poisson subsampling rate, find the minimal Skellam `mu` (or
//! Gaussian `sigma`) whose end-to-end accounting meets the target. Both
//! searches exploit monotonicity of `eps` in the noise scale and bisect in
//! log-space after doubling to bracket.

use crate::conversion::best_epsilon;
use crate::default_alpha_grid;
use crate::gaussian::gaussian_rdp;
use crate::skellam::{skellam_rdp, Sensitivity};
use crate::subsampling::subsampled_rdp;

/// A target `(eps, delta)`-DP guarantee.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct CalibrationTarget {
    pub epsilon: f64,
    pub delta: f64,
}

impl CalibrationTarget {
    pub fn new(epsilon: f64, delta: f64) -> Self {
        assert!(epsilon > 0.0, "target epsilon must be positive");
        assert!(delta > 0.0 && delta < 1.0, "target delta must be in (0,1)");
        CalibrationTarget { epsilon, delta }
    }
}

/// The `(eps, alpha)` achieved by `rounds` subsampled Skellam releases.
pub fn skellam_epsilon(sens: Sensitivity, mu: f64, rounds: u32, q: f64, delta: f64) -> (f64, u64) {
    let grid = default_alpha_grid();
    best_epsilon(
        |a| rounds as f64 * subsampled_rdp(a, q, |l| skellam_rdp(l, sens, mu)),
        delta,
        &grid,
    )
}

/// The `(eps, alpha)` achieved by `rounds` subsampled Gaussian releases.
pub fn gaussian_epsilon(delta2: f64, sigma: f64, rounds: u32, q: f64, delta: f64) -> (f64, u64) {
    let grid = default_alpha_grid();
    best_epsilon(
        |a| rounds as f64 * subsampled_rdp(a, q, |l| gaussian_rdp(l as f64, delta2, sigma)),
        delta,
        &grid,
    )
}

/// Minimal Skellam `mu` meeting `target` for `rounds` releases of a function
/// with sensitivity `sens`, each on a Poisson subsample of rate `q`
/// (`q = 1.0` means no subsampling).
///
/// ```
/// use sqm_accounting::calibration::{calibrate_skellam_mu, skellam_epsilon, CalibrationTarget};
/// use sqm_accounting::skellam::Sensitivity;
///
/// let target = CalibrationTarget::new(1.0, 1e-5);
/// let sens = Sensitivity::new(2.0, 2.0);
/// let mu = calibrate_skellam_mu(target, sens, 1, 1.0);
/// let (eps, _) = skellam_epsilon(sens, mu, 1, 1.0, 1e-5);
/// assert!(eps <= 1.0 + 1e-9);
/// ```
pub fn calibrate_skellam_mu(
    target: CalibrationTarget,
    sens: Sensitivity,
    rounds: u32,
    q: f64,
) -> f64 {
    assert!(rounds >= 1, "rounds must be >= 1");
    calibrate_monotone(target.epsilon, |mu| {
        skellam_epsilon(sens, mu, rounds, q, target.delta).0
    })
}

/// Minimal Gaussian `sigma` meeting `target` for `rounds` releases with L2
/// sensitivity `delta2`, each on a Poisson subsample of rate `q`.
pub fn calibrate_gaussian_sigma(
    target: CalibrationTarget,
    delta2: f64,
    rounds: u32,
    q: f64,
) -> f64 {
    assert!(rounds >= 1, "rounds must be >= 1");
    calibrate_monotone(target.epsilon, |sigma| {
        gaussian_epsilon(delta2, sigma, rounds, q, target.delta).0
    })
}

/// Bisection for the smallest noise scale `s` with `eps_of(s) <= target`,
/// assuming `eps_of` is decreasing in `s`.
fn calibrate_monotone<F: Fn(f64) -> f64>(target_eps: f64, eps_of: F) -> f64 {
    let mut hi = 1.0f64;
    let mut iters = 0;
    while eps_of(hi) > target_eps {
        hi *= 4.0;
        iters += 1;
        assert!(iters < 200, "failed to bracket noise scale from above");
    }
    let mut lo = hi;
    while eps_of(lo) <= target_eps && lo > 1e-30 {
        lo /= 4.0;
    }
    for _ in 0..100 {
        let mid = (lo * hi).sqrt();
        if eps_of(mid) <= target_eps {
            hi = mid;
        } else {
            lo = mid;
        }
        if hi / lo < 1.0 + 1e-9 {
            break;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skellam_calibration_meets_target() {
        let t = CalibrationTarget::new(1.0, 1e-5);
        let s = Sensitivity::new(4.0, 2.0);
        let mu = calibrate_skellam_mu(t, s, 1, 1.0);
        let (eps, _) = skellam_epsilon(s, mu, 1, 1.0, t.delta);
        assert!(eps <= 1.0 * (1.0 + 1e-6), "eps={eps}");
        // Tight: 10% less noise violates.
        let (eps2, _) = skellam_epsilon(s, mu * 0.9, 1, 1.0, t.delta);
        assert!(eps2 > 1.0);
    }

    #[test]
    fn skellam_matches_gaussian_variance_asymptotically() {
        // For fine quantization the Skellam mechanism's calibrated variance
        // 2*mu should be close to the Gaussian sigma^2 calibrated by the
        // same RDP pipeline (the paper's privacy-utility comparison).
        let t = CalibrationTarget::new(2.0, 1e-5);
        let d2 = 100.0; // large sensitivity => large mu => Gaussian regime
        let s = Sensitivity::from_l2_for_dim(d2, 1);
        let mu = calibrate_skellam_mu(t, s, 1, 1.0);
        let sigma = calibrate_gaussian_sigma(t, d2, 1, 1.0);
        let ratio = (2.0 * mu).sqrt() / sigma;
        assert!((ratio - 1.0).abs() < 0.05, "ratio={ratio}");
    }

    #[test]
    fn gaussian_calibration_meets_target() {
        let t = CalibrationTarget::new(0.5, 1e-5);
        let sigma = calibrate_gaussian_sigma(t, 1.0, 10, 0.01);
        let (eps, _) = gaussian_epsilon(1.0, sigma, 10, 0.01, t.delta);
        assert!(eps <= 0.5 * (1.0 + 1e-6), "eps={eps}");
        let (eps2, _) = gaussian_epsilon(1.0, sigma * 0.9, 10, 0.01, t.delta);
        assert!(eps2 > 0.5);
    }

    #[test]
    fn more_rounds_needs_more_noise() {
        let t = CalibrationTarget::new(1.0, 1e-5);
        let s = Sensitivity::new(1.0, 1.0);
        let mu1 = calibrate_skellam_mu(t, s, 1, 1.0);
        let mu10 = calibrate_skellam_mu(t, s, 10, 1.0);
        assert!(mu10 > mu1);
    }

    #[test]
    fn subsampling_reduces_noise() {
        let t = CalibrationTarget::new(1.0, 1e-5);
        let s = Sensitivity::new(1.0, 1.0);
        let full = calibrate_skellam_mu(t, s, 5, 1.0);
        let sub = calibrate_skellam_mu(t, s, 5, 0.01);
        assert!(sub < full / 10.0, "sub={sub} full={full}");
    }

    #[test]
    fn larger_eps_needs_less_noise() {
        let s = Sensitivity::new(1.0, 1.0);
        let mu_tight = calibrate_skellam_mu(CalibrationTarget::new(0.25, 1e-5), s, 1, 1.0);
        let mu_loose = calibrate_skellam_mu(CalibrationTarget::new(8.0, 1e-5), s, 1, 1.0);
        assert!(mu_loose < mu_tight);
    }
}
