//! Lemma 1: the RDP guarantee of the Skellam mechanism.
//!
//! Injecting `Sk^d(mu)` into a d-dimensional integer-valued function with
//! L1 sensitivity `Delta_1` and L2 sensitivity `Delta_2` satisfies, for any
//! integer `alpha > 1`:
//!
//! ```text
//! tau <= (alpha / 2) * Delta_2^2 / (2 mu)
//!        + min( ((2 alpha - 1) Delta_2^2 + 6 Delta_1) / (16 mu^2),
//!               3 Delta_1 / (4 mu) )
//! ```

/// Sensitivity pair for an integer-valued function.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Sensitivity {
    /// L1 sensitivity `Delta_1`.
    pub l1: f64,
    /// L2 sensitivity `Delta_2`.
    pub l2: f64,
}

impl Sensitivity {
    /// Construct, validating non-negativity and the norm inequality
    /// `Delta_2 <= Delta_1` (which holds for any vector).
    pub fn new(l1: f64, l2: f64) -> Self {
        assert!(l1 >= 0.0 && l2 >= 0.0, "sensitivities must be non-negative");
        assert!(
            l2 <= l1 * (1.0 + 1e-12) || l1 == 0.0,
            "L2 sensitivity ({l2}) cannot exceed L1 sensitivity ({l1})"
        );
        Sensitivity { l1, l2 }
    }

    /// The paper's generic bound for d-dimensional integer outputs
    /// (Lemma 4): `Delta_1 = min(Delta_2^2, sqrt(d) * Delta_2)`.
    pub fn from_l2_for_dim(l2: f64, d: usize) -> Self {
        assert!(l2 >= 0.0);
        let l1 = (l2 * l2).min((d as f64).sqrt() * l2);
        // An integer vector's L1 norm is at least its L2 norm; the paper's
        // bound can dip below Delta_2 only when Delta_2 < 1, where it is
        // still a valid upper bound on the true L1 sensitivity of an
        // integer-valued function (which is then 0 or >= 1 <= Delta_2^2).
        Sensitivity { l1, l2 }
    }
}

/// Lemma 1: RDP of order `alpha` (integer, >= 2) for the Skellam mechanism
/// with noise parameter `mu`.
pub fn skellam_rdp(alpha: u64, sens: Sensitivity, mu: f64) -> f64 {
    assert!(
        alpha >= 2,
        "Lemma 1 requires integer alpha > 1, got {alpha}"
    );
    assert!(mu > 0.0, "Skellam noise parameter mu must be positive");
    let a = alpha as f64;
    let d1 = sens.l1;
    let d2sq = sens.l2 * sens.l2;
    let main = a * d2sq / (4.0 * mu);
    let corr_a = ((2.0 * a - 1.0) * d2sq + 6.0 * d1) / (16.0 * mu * mu);
    let corr_b = 3.0 * d1 / (4.0 * mu);
    main + corr_a.min(corr_b)
}

/// The paper's client-observed variant: a curious client knows her own local
/// noise share, so the effective aggregate noise is `Sk((n-1)/n * mu)`, and
/// neighboring databases *replace* a record (doubling both sensitivities).
/// See the discussion below Lemma 3.
pub fn skellam_rdp_client_observed(
    alpha: u64,
    sens: Sensitivity,
    mu: f64,
    n_clients: usize,
) -> f64 {
    assert!(
        n_clients >= 2,
        "client-observed DP needs at least 2 clients"
    );
    let eff_mu = mu * (n_clients as f64 - 1.0) / n_clients as f64;
    let doubled = Sensitivity::new(2.0 * sens.l1, 2.0 * sens.l2);
    skellam_rdp(alpha, doubled, eff_mu)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_by_lemma3_closed_form() {
        // Lemma 3 states tau = alpha Delta^2/(4 mu) + 3 Delta/(4 mu), which
        // uses the linear branch of Lemma 1's min(); the full Lemma 1 bound
        // is never larger. For large mu the quadratic 1/mu^2 branch wins, so
        // the bound is strictly smaller there.
        let delta = 10.0;
        let mu = 1e6;
        let alpha = 8;
        let s = Sensitivity::new(delta, delta);
        let got = skellam_rdp(alpha, s, mu);
        let lemma3 = 8.0 * delta * delta / (4.0 * mu) + 3.0 * delta / (4.0 * mu);
        assert!(got <= lemma3 * (1.0 + 1e-12));
        let main = 8.0 * delta * delta / (4.0 * mu);
        let corr_a = ((2.0 * 8.0 - 1.0) * 100.0 + 60.0) / (16.0 * mu * mu);
        assert!((got - (main + corr_a)).abs() / got < 1e-12);
    }

    #[test]
    fn small_mu_uses_quadratic_branch() {
        // With small mu the 1/mu^2 branch can be the smaller correction.
        let s = Sensitivity::new(1.0, 1.0);
        let alpha = 2;
        let mu = 100.0;
        let corr_a = ((2.0 * 2.0 - 1.0) * 1.0 + 6.0) / (16.0 * mu * mu);
        let corr_b = 3.0 / (4.0 * mu);
        assert!(corr_a < corr_b);
        let got = skellam_rdp(alpha, s, mu);
        assert!((got - (2.0 / (4.0 * mu) + corr_a)).abs() < 1e-15);
    }

    #[test]
    fn approaches_gaussian_as_mu_grows() {
        // As mu -> inf with fixed sensitivity, tau -> alpha Delta_2^2/(4 mu),
        // the Gaussian RDP with sigma^2 = 2 mu (Skellam variance).
        let s = Sensitivity::new(5.0, 5.0);
        for alpha in [2u64, 4, 16] {
            let mu = 1e9;
            let tau = skellam_rdp(alpha, s, mu);
            let gaussian = alpha as f64 * 25.0 / (2.0 * (2.0 * mu));
            assert!((tau - gaussian) / gaussian < 1e-3, "alpha={alpha}");
        }
    }

    #[test]
    fn monotone_in_alpha_and_mu() {
        let s = Sensitivity::new(3.0, 2.0);
        let t1 = skellam_rdp(2, s, 1000.0);
        let t2 = skellam_rdp(8, s, 1000.0);
        assert!(t2 > t1);
        let t3 = skellam_rdp(2, s, 10_000.0);
        assert!(t3 < t1);
    }

    #[test]
    fn client_observed_is_weaker() {
        let s = Sensitivity::new(2.0, 2.0);
        let server = skellam_rdp(4, s, 5000.0);
        let client = skellam_rdp_client_observed(4, s, 5000.0, 10);
        assert!(client > server);
        // With many clients the gap is dominated by sensitivity doubling
        // (factor ~4 on the quadratic term).
        let client_many = skellam_rdp_client_observed(4, s, 5000.0, 100_000);
        assert!((client_many / server - 4.0).abs() < 0.1);
    }

    #[test]
    fn dim_bound_helper() {
        let s = Sensitivity::from_l2_for_dim(10.0, 4);
        // min(100, 2*10) = 20.
        assert_eq!(s.l1, 20.0);
        let s = Sensitivity::from_l2_for_dim(10.0, 10_000);
        // min(100, 100*10) = 100.
        assert_eq!(s.l1, 100.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_alpha_one() {
        skellam_rdp(1, Sensitivity::new(1.0, 1.0), 10.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_mu() {
        skellam_rdp(2, Sensitivity::new(1.0, 1.0), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn prop_monotone_in_alpha(
            alpha in 2u64..200,
            d in 1.0f64..1e6,
            mu in 1.0f64..1e12,
        ) {
            let s = Sensitivity::new(d, d);
            prop_assert!(skellam_rdp(alpha + 1, s, mu) >= skellam_rdp(alpha, s, mu));
        }

        #[test]
        fn prop_antitone_in_mu(
            alpha in 2u64..64,
            d in 1.0f64..1e6,
            mu in 1.0f64..1e12,
        ) {
            let s = Sensitivity::new(d, d);
            prop_assert!(skellam_rdp(alpha, s, mu * 2.0) <= skellam_rdp(alpha, s, mu));
        }

        #[test]
        fn prop_bounded_by_lemma3_form(
            alpha in 2u64..64,
            d in 0.1f64..1e4,
            mu in 1.0f64..1e10,
        ) {
            // Lemma 1's min() never exceeds the 3*Delta_1/(4mu) branch.
            let s = Sensitivity::new(d, d);
            let full = skellam_rdp(alpha, s, mu);
            let lemma3 = alpha as f64 * d * d / (4.0 * mu) + 3.0 * d / (4.0 * mu);
            prop_assert!(full <= lemma3 * (1.0 + 1e-12));
        }
    }
}
