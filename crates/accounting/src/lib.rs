//! Differential-privacy accounting for SQM and its baselines.
//!
//! This crate implements, in closed form, every accounting result the paper
//! relies on:
//!
//! * [`skellam::skellam_rdp`] — Lemma 1, the RDP bound of the Skellam
//!   mechanism for integer-valued functions with bounded L1/L2 sensitivity.
//! * [`gaussian::gaussian_rdp`] — the classic Gaussian RDP bound
//!   `alpha * Delta^2 / (2 sigma^2)` (Section II).
//! * [`conversion::rdp_to_dp`] — Lemma 9 (Canonne-Kamath-Steinke), the
//!   RDP-to-(eps, delta) conversion.
//! * [`subsampling::subsampled_rdp`] — Lemma 11 (Zhu-Wang), Poisson
//!   subsampling amplification for integer Rényi orders.
//! * Composition (Lemma 10) — RDP curves add; see [`rdp::RdpCurve::compose`].
//! * [`analytic_gaussian::analytic_gaussian_sigma`] — Lemma 8
//!   (Balle-Wang), exact calibration of the Gaussian mechanism.
//! * [`calibration`] — bisection searches that answer the question every
//!   experiment asks: *given a target `(eps, delta)`, how much noise?*

pub mod analytic_gaussian;
pub mod budget;
pub mod calibration;
pub mod conversion;
pub mod discrete_gaussian;
pub mod gaussian;
pub mod rdp;
pub mod skellam;
pub mod subsampling;

pub use analytic_gaussian::analytic_gaussian_sigma;
pub use budget::{Admission, PrivacyOdometer};
pub use calibration::{calibrate_gaussian_sigma, calibrate_skellam_mu, CalibrationTarget};
pub use conversion::rdp_to_dp;
pub use discrete_gaussian::discrete_gaussian_rdp;
pub use gaussian::gaussian_rdp;
pub use rdp::RdpCurve;
pub use skellam::skellam_rdp;
pub use subsampling::subsampled_rdp;

/// The default grid of integer Rényi orders used when optimizing the
/// RDP-to-DP conversion. Lemma 1 and Lemma 11 both require integer orders.
pub fn default_alpha_grid() -> Vec<u64> {
    (2..=256).collect()
}
