//! Gaussian-mechanism RDP: `tau(alpha) = alpha * Delta^2 / (2 sigma^2)`.
//!
//! Used by the central-DP baselines (Analyze Gauss, DPSGD, Approx-Poly) and
//! the local-DP baseline of Algorithm 4 / Lemma 12.

/// RDP of order `alpha` for the Gaussian mechanism with L2 sensitivity
/// `delta2` and noise standard deviation `sigma`.
pub fn gaussian_rdp(alpha: f64, delta2: f64, sigma: f64) -> f64 {
    assert!(alpha > 1.0, "RDP order must exceed 1, got {alpha}");
    assert!(sigma > 0.0, "sigma must be positive");
    assert!(delta2 >= 0.0, "sensitivity must be non-negative");
    alpha * delta2 * delta2 / (2.0 * sigma * sigma)
}

/// Lemma 12 (baseline Algorithm 4): server-observed RDP of the local-DP
/// baseline where each client perturbs its column with `N(0, sigma^2)` and
/// records have L2 norm at most `c`.
pub fn local_dp_baseline_rdp_server(alpha: f64, c: f64, sigma: f64) -> f64 {
    gaussian_rdp(alpha, c, sigma)
}

/// Lemma 12, client-observed: sensitivity doubles (record replacement).
pub fn local_dp_baseline_rdp_client(alpha: f64, c: f64, sigma: f64) -> f64 {
    gaussian_rdp(alpha, 2.0 * c, sigma)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form() {
        assert_eq!(gaussian_rdp(2.0, 3.0, 3.0), 1.0);
        assert_eq!(gaussian_rdp(4.0, 1.0, 1.0), 2.0);
    }

    #[test]
    fn linear_in_alpha() {
        let t2 = gaussian_rdp(2.0, 1.0, 2.0);
        let t8 = gaussian_rdp(8.0, 1.0, 2.0);
        assert!((t8 / t2 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn client_observed_is_4x_server() {
        let s = local_dp_baseline_rdp_server(3.0, 1.0, 5.0);
        let c = local_dp_baseline_rdp_client(3.0, 1.0, 5.0);
        assert!((c / s - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn rejects_small_alpha() {
        gaussian_rdp(1.0, 1.0, 1.0);
    }
}
