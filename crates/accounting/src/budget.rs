//! A privacy-budget odometer: track cumulative RDP spend across multiple
//! releases on the same database.
//!
//! Real deployments run *several* SQM analyses over one dataset (e.g. a DP
//! covariance for auditing, then an LR training run). Lemma 10 says RDP
//! curves add; the odometer holds the running composition and answers
//! "what `(eps, delta)` have we spent so far?" and "does this next release
//! still fit the budget?" before any noise is drawn.

use serde::{Deserialize, Serialize};

use crate::default_alpha_grid;
use crate::rdp::RdpCurve;

/// Result of asking the odometer to admit one more release.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Admission {
    /// The release fits; it has been recorded.
    Admitted,
    /// The release would exceed the budget; nothing was recorded.
    Rejected,
}

/// A running account of RDP spend against a fixed `(eps, delta)` budget.
///
/// ```
/// use sqm_accounting::budget::{Admission, PrivacyOdometer};
/// use sqm_accounting::{default_alpha_grid, gaussian_rdp, RdpCurve};
///
/// let mut odometer = PrivacyOdometer::new(2.0, 1e-5);
/// let release = RdpCurve::from_fn(&default_alpha_grid(), |a| gaussian_rdp(a as f64, 1.0, 6.0));
/// assert_eq!(odometer.admit(&release), Admission::Admitted);
/// assert!(odometer.spent_epsilon() <= 2.0);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PrivacyOdometer {
    budget_eps: f64,
    delta: f64,
    spent: RdpCurve,
    releases: usize,
}

impl PrivacyOdometer {
    /// A fresh odometer with an overall `(budget_eps, delta)` budget.
    pub fn new(budget_eps: f64, delta: f64) -> Self {
        assert!(budget_eps > 0.0, "budget epsilon must be positive");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        PrivacyOdometer {
            budget_eps,
            delta,
            spent: RdpCurve::zero(&default_alpha_grid()),
            releases: 0,
        }
    }

    /// The configured overall budget.
    pub fn budget(&self) -> (f64, f64) {
        (self.budget_eps, self.delta)
    }

    /// Number of releases recorded so far.
    pub fn releases(&self) -> usize {
        self.releases
    }

    /// The `(eps, alpha)` already spent (0-release odometers report the
    /// small-but-nonzero conversion floor of the zero curve).
    pub fn spent_epsilon(&self) -> f64 {
        self.spent.to_epsilon(self.delta).0
    }

    /// Would composing `curve` stay within budget? Does not record.
    pub fn fits(&self, curve: &RdpCurve) -> bool {
        let (eps, _) = self.spent.compose(curve).to_epsilon(self.delta);
        eps <= self.budget_eps * (1.0 + 1e-12)
    }

    /// Try to admit a release described by its RDP curve. Records the spend
    /// only if the composed total stays within budget.
    pub fn admit(&mut self, curve: &RdpCurve) -> Admission {
        if self.fits(curve) {
            self.spent = self.spent.compose(curve);
            self.releases += 1;
            Admission::Admitted
        } else {
            Admission::Rejected
        }
    }

    /// Remaining headroom: the budget minus the current spend (may be
    /// negative only by floating error; clamped at 0).
    pub fn remaining_epsilon(&self) -> f64 {
        (self.budget_eps - self.spent_epsilon()).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gaussian::gaussian_rdp;

    fn release(sigma: f64) -> RdpCurve {
        RdpCurve::from_fn(&default_alpha_grid(), |a| {
            gaussian_rdp(a as f64, 1.0, sigma)
        })
    }

    #[test]
    fn admits_until_budget_exhausted() {
        let mut odo = PrivacyOdometer::new(2.0, 1e-5);
        let r = release(5.0); // each ~ eps 0.7-0.9 alone
        let mut admitted = 0;
        for _ in 0..20 {
            if odo.admit(&r) == Admission::Admitted {
                admitted += 1;
            }
        }
        assert!(
            admitted >= 2,
            "at least two releases should fit, got {admitted}"
        );
        assert!(admitted <= 8, "budget must bind, admitted {admitted}");
        assert!(odo.spent_epsilon() <= 2.0 + 1e-9);
        assert_eq!(odo.releases(), admitted);
    }

    #[test]
    fn rejection_does_not_record() {
        let mut odo = PrivacyOdometer::new(0.5, 1e-5);
        let huge = release(0.5);
        let before = odo.spent_epsilon();
        assert_eq!(odo.admit(&huge), Admission::Rejected);
        assert_eq!(odo.spent_epsilon(), before);
        assert_eq!(odo.releases(), 0);
    }

    #[test]
    fn fits_is_pure() {
        let odo = PrivacyOdometer::new(1.0, 1e-5);
        let r = release(10.0);
        assert!(odo.fits(&r));
        assert_eq!(odo.releases(), 0);
    }

    #[test]
    fn remaining_decreases_monotonically() {
        let mut odo = PrivacyOdometer::new(4.0, 1e-5);
        let r = release(8.0);
        let mut last = odo.remaining_epsilon();
        for _ in 0..3 {
            assert_eq!(odo.admit(&r), Admission::Admitted);
            let now = odo.remaining_epsilon();
            assert!(now < last);
            last = now;
        }
    }

    #[test]
    fn rdp_composition_beats_naive_addition() {
        // The odometer composes in RDP space: k releases cost less than
        // k * (single-release eps).
        let mut odo = PrivacyOdometer::new(100.0, 1e-5);
        let r = release(5.0);
        let single = {
            let mut o = PrivacyOdometer::new(100.0, 1e-5);
            o.admit(&r);
            o.spent_epsilon()
        };
        for _ in 0..9 {
            odo.admit(&r);
        }
        assert!(
            odo.spent_epsilon() < 9.0 * single,
            "{} vs {}",
            odo.spent_epsilon(),
            9.0 * single
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_budget() {
        PrivacyOdometer::new(0.0, 1e-5);
    }
}
