//! Quickstart: differentially private polynomial evaluation over a
//! vertically partitioned toy database.
//!
//! Three organizations each hold one attribute about the same users. They
//! want the server to learn `sum_x (x0 * x1 + 0.5 * x2^2)` — a degree-2
//! polynomial statistic — under distributed DP, trusting nobody.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqm::accounting::calibration::{calibrate_skellam_mu, CalibrationTarget};
use sqm::core::sensitivity::generic_sensitivity;
use sqm::core::{sqm_polynomial, Monomial, Polynomial, SqmParams};
use sqm::linalg::Matrix;
use sqm::vfl::{eval_polynomial_skellam, ColumnPartition, VflConfig};

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // The vertically partitioned database: 200 users, 3 attributes, each
    // attribute owned by a different client. Records have L2 norm <= 1.
    let m = 200;
    let data = Matrix::from_rows(
        &(0..m)
            .map(|i| {
                let t = i as f64 / m as f64;
                vec![
                    0.5 * (6.0 * t).sin(),
                    0.4 * (3.0 * t).cos(),
                    0.3 * (2.0 * t - 1.0),
                ]
            })
            .collect::<Vec<_>>(),
    );

    // The public function of interest.
    let f = Polynomial::one_dimensional(
        3,
        vec![
            Monomial::new(1.0, vec![(0, 1), (1, 1)]), // x0 * x1
            Monomial::new(0.5, vec![(2, 2)]),         // 0.5 * x2^2
        ],
    );
    let truth = f.sum_over((0..m).map(|i| data.row(i)))[0];
    println!("true value of F(X)            : {truth:.4}");

    // Calibrate the Skellam noise for (eps = 1, delta = 1e-5) against the
    // quantized function's sensitivity (Lemma 4 + Lemma 1 + Lemma 9).
    let gamma = 4096.0;
    let target = CalibrationTarget::new(1.0, 1e-5);
    let max_f = 1.0; // |x0 x1 + 0.5 x2^2| <= 1 on the unit ball
    let sens = generic_sensitivity(&f, gamma, 1.0, max_f);
    let mu = calibrate_skellam_mu(target, sens, 1, 1.0);
    println!("quantization scale gamma      : {gamma}");
    println!("calibrated Skellam mu         : {mu:.3e}");

    // (a) Fast path: output-equivalent plaintext simulation.
    let est = sqm_polynomial(&mut rng, &f, &data, SqmParams::new(gamma, mu, 3));
    println!("SQM estimate (plaintext sim)  : {:.4}", est[0]);

    // (b) The real thing: three clients run BGW; only the perturbed integer
    // result is ever opened.
    let partition = ColumnPartition::even(3, 3);
    let cfg = VflConfig::new(3).with_seed(7);
    let (vals, stats) = eval_polynomial_skellam(&f, &data, &partition, gamma, mu, &cfg);
    println!("SQM estimate (BGW, 3 parties) : {:.4}", vals[0]);
    println!(
        "MPC cost: {} rounds, {} messages, {} bytes, simulated time {:.2?} (0.1 s/hop)",
        stats.total.rounds,
        stats.total.messages,
        stats.total.bytes,
        stats.simulated_time(),
    );
    println!(
        "  of which DP noise injection: {:.2?}",
        stats.phase_time("dp_noise")
    );

    let err = (vals[0] - truth).abs();
    println!(
        "absolute error                : {err:.4} (noise std ~ {:.4})",
        (2.0 * mu).sqrt() / gamma.powi(3)
    );
}
