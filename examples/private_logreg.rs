//! Differentially private logistic regression over vertically partitioned
//! data (one cell of the paper's Figure 3, ACSIncome-shaped).
//!
//! Run with: `cargo run --release --example private_logreg`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqm::datasets::presets::acsincome_classification;
use sqm::datasets::Scale;
use sqm::tasks::logreg::{
    accuracy, ApproxPolyLogReg, DpSgd, LocalDpLogReg, LrConfig, NonPrivateLogReg, SqmLogReg,
};

fn main() {
    let mut rng = StdRng::seed_from_u64(2);
    let (train, test) = acsincome_classification(0, Scale::Laptop, 0).split(0.8, 0);
    println!(
        "ACSIncome(CA)-shaped data: {} train / {} test, {} features",
        train.len(),
        test.len(),
        train.features.cols()
    );

    let (eps, delta) = (2.0, 1e-5);
    let cfg = LrConfig::new(200, 0.05).with_lr(2.0).with_seed(11);
    println!(
        "privacy target (eps={eps}, delta={delta}); {} rounds at q={}",
        cfg.rounds, cfg.q
    );
    println!("{:<30} {:>10}", "mechanism", "accuracy");

    let w = NonPrivateLogReg::new(cfg.clone()).fit(&mut rng, &train);
    println!(
        "{:<30} {:>10.4}",
        "non-private (ceiling)",
        accuracy(&w, &test)
    );

    let w = DpSgd::new(cfg.clone(), eps, delta).fit(&mut rng, &train);
    println!("{:<30} {:>10.4}", "central DPSGD", accuracy(&w, &test));

    let w = ApproxPolyLogReg::new(cfg.clone(), eps, delta).fit(&mut rng, &train);
    println!(
        "{:<30} {:>10.4}",
        "central Approx-Poly",
        accuracy(&w, &test)
    );

    for gamma_log2 in [10u32, 13] {
        let gamma = 2f64.powi(gamma_log2 as i32);
        let mech = SqmLogReg::new(cfg.clone(), gamma, eps, delta);
        let mu = mech.calibrated_mu(train.features.cols());
        let w = mech.fit(&mut rng, &train);
        println!(
            "{:<30} {:>10.4}   (mu = {mu:.2e})",
            format!("SQM (gamma = 2^{gamma_log2})"),
            accuracy(&w, &test)
        );
    }

    let w = LocalDpLogReg::new(eps, delta).fit(&mut rng, &train);
    println!(
        "{:<30} {:>10.4}",
        "local DP (VFL baseline)",
        accuracy(&w, &test)
    );
}
