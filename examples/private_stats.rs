//! Beyond the paper's two tasks: DP means and DP ridge regression over
//! vertically partitioned data — both are "polynomial sufficient
//! statistics" instantiations of SQM.
//!
//! Run with: `cargo run --release --example private_stats`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqm::datasets::{RegressionSpec, SpectralSpec};
use sqm::tasks::ridge::{GaussianRidge, LocalDpRidge, NonPrivateRidge, SqmRidge};
use sqm::tasks::stats::{exact_means, mean_l2_error, GaussianMean, LocalDpMean, SqmMean};

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let (eps, delta) = (1.0, 1e-5);

    // ---- DP means (degree-1 release) -------------------------------------
    let x = SpectralSpec::new(5000, 12).with_seed(1).generate();
    let truth = exact_means(&x);
    println!("per-attribute means of 5000 x 12 data at (eps = {eps}, delta = {delta}):");
    println!("{:<24} {:>12}", "mechanism", "L2 error");
    let e = mean_l2_error(
        &SqmMean::new(4096.0, eps, delta).estimate(&mut rng, &x),
        &truth,
    );
    println!("{:<24} {e:>12.6}", "SQM (gamma = 2^12)");
    let e = mean_l2_error(
        &GaussianMean::new(eps, delta).estimate(&mut rng, &x),
        &truth,
    );
    println!("{:<24} {e:>12.6}", "central Gaussian");
    let e = mean_l2_error(&LocalDpMean::new(eps, delta).estimate(&mut rng, &x), &truth);
    println!("{:<24} {e:>12.6}", "local DP");

    // ---- DP ridge regression (degree-2 sufficient statistics) ------------
    let (train, test) = RegressionSpec::new(4000, 15)
        .with_seed(2)
        .generate()
        .split(0.8, 0);
    let lambda = 1e-3;
    println!(
        "\nridge regression, {} train records, d = 15, lambda = {lambda}:",
        train.len()
    );
    println!("{:<24} {:>12}", "mechanism", "test MSE");
    let w = NonPrivateRidge::new(lambda).fit(&train);
    println!("{:<24} {:>12.6}", "non-private (floor)", test.mse(&w));
    let w = SqmRidge::new(lambda, 8192.0, eps, delta).fit(&mut rng, &train);
    println!("{:<24} {:>12.6}", "SQM (gamma = 2^13)", test.mse(&w));
    let w = GaussianRidge::new(lambda, eps, delta).fit(&mut rng, &train);
    println!("{:<24} {:>12.6}", "central Gaussian", test.mse(&w));
    let w = LocalDpRidge::new(lambda, eps, delta).fit(&mut rng, &train);
    println!("{:<24} {:>12.6}", "local DP", test.mse(&w));

    println!(
        "\nBoth statistics are polynomials of the joint record, so both inherit\n\
         SQM's central-DP-matching utility without any trusted party."
    );
}
