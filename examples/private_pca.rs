//! Differentially private PCA over vertically partitioned data: SQM versus
//! the central-DP ceiling and the local-DP floor.
//!
//! Reproduces one cell of the paper's Figure 2 on a KDDCUP-shaped synthetic
//! dataset.
//!
//! Run with: `cargo run --release --example private_pca`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqm::datasets::{kddcup_like, Scale};
use sqm::tasks::pca::{pca_utility, AnalyzeGaussPca, LocalDpPca, NonPrivatePca, SqmPca};

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    let data = kddcup_like(Scale::Laptop, 0);
    let (m, n) = (data.rows(), data.cols());
    let k = 5;
    let (eps, delta) = (1.0, 1e-5);
    println!("KDDCUP-shaped data: {m} records x {n} attributes; top-{k} PCA at (eps={eps}, delta={delta})");

    let ceiling = pca_utility(&data, &NonPrivatePca::new(k).fit(&data));
    println!("{:<28} {:>12}", "mechanism", "||XV||_F^2");
    println!("{:<28} {:>12.2}", "non-private (ceiling)", ceiling);

    let central = pca_utility(
        &data,
        &AnalyzeGaussPca::new(k, eps, delta).fit(&mut rng, &data),
    );
    println!("{:<28} {:>12.2}", "central DP (Analyze Gauss)", central);

    for gamma_log2 in [6u32, 10, 14] {
        let gamma = 2f64.powi(gamma_log2 as i32);
        let sqm = SqmPca::new(k, gamma, eps, delta).with_clients(n.min(16));
        let u = pca_utility(&data, &sqm.fit(&mut rng, &data));
        println!(
            "{:<28} {:>12.2}",
            format!("SQM (gamma = 2^{gamma_log2})"),
            u
        );
    }

    let local = pca_utility(&data, &LocalDpPca::new(k, eps, delta).fit(&mut rng, &data));
    println!("{:<28} {:>12.2}", "local DP (VFL baseline)", local);

    println!();
    println!(
        "SQM approaches the central-DP utility as gamma grows, while the\n\
         local-DP baseline pays the full cost of privatizing raw data."
    );
}
