//! The paper's motivating scenario, end to end over real MPC.
//!
//! Three organizations share a user base: an e-commerce platform (browsing
//! features), an online payment service (transaction features) and a credit
//! bureau (bureau features plus the fraud label). None may reveal raw data
//! to the others or to the coordinating server, and the *model itself* must
//! not leak individuals — so they run SQM-LR over BGW with distributed
//! Skellam noise, and also release a DP cross-party covariance for feature
//! auditing.
//!
//! (Three parties, not two: BGW's semi-honest threshold `t = floor((P-1)/2)`
//! degenerates to `t = 0` at `P = 2`, which keeps outputs correct but gives
//! the two parties no secrecy from each other — see
//! `sqm::mpc::engine::MpcConfig::semi_honest`. With `P = 3`, `t = 1`: any
//! single curious party learns nothing beyond the DP outputs.)
//!
//! Run with: `cargo run --release --example fraud_detection`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqm::datasets::ClassificationSpec;
use sqm::tasks::logreg::{accuracy, LrBackend, LrConfig, SqmLogReg};
use sqm::vfl::{covariance_skellam, ColumnPartition, VflConfig};

fn main() {
    // 500 shared users; platform owns features 0..3, payments 3..6, and the
    // credit bureau 6..8 plus the fraud label (col 8).
    let ds = ClassificationSpec::new(500, 8).with_seed(5).generate();
    let (train, test) = ds.split(0.8, 0);
    println!(
        "joint user base: {} train / {} test users, 3 + 3 + 2 features across 3 organizations",
        train.len(),
        test.len()
    );

    let mut rng = StdRng::seed_from_u64(3);
    let (eps, delta) = (4.0, 1e-5);

    // ---- 1. DP cross-party covariance for feature auditing --------------
    // Feature columns 0..3 -> platform, 3..6 -> payments, 6..8 -> bureau.
    let features = train.features.clone();
    let partition = ColumnPartition::from_owners(vec![0, 0, 0, 1, 1, 1, 2, 2], 3);
    let cfg = VflConfig::new(3).with_seed(17);
    let gamma = 4096.0;
    let sens = sqm::core::sensitivity::pca_sensitivity(gamma, 1.0, 8);
    let mu = sqm::accounting::calibration::calibrate_skellam_mu(
        sqm::accounting::calibration::CalibrationTarget::new(eps, delta),
        sens,
        1,
        1.0,
    );
    let out = covariance_skellam(&features, &partition, gamma, mu, &cfg);
    let cov = out.c_hat.scaled(1.0 / (gamma * gamma));
    println!("\nDP covariance released (eps={eps}): diagonal = ");
    let diag: Vec<String> = (0..8).map(|j| format!("{:.3}", cov[(j, j)])).collect();
    println!("  [{}]", diag.join(", "));
    println!(
        "MPC cost: {} rounds, {} KiB, simulated {:.1?} at 0.1 s/hop ({:.1?} for DP noise)",
        out.stats.total.rounds,
        out.stats.total.bytes / 1024,
        out.stats.simulated_time(),
        out.stats.phase_time("dp_noise"),
    );

    // ---- 2. Joint fraud model via SQM-LR over BGW ------------------------
    let lr_cfg = LrConfig::new(30, 0.25).with_lr(2.0).with_seed(23);
    let mech = SqmLogReg::new(lr_cfg, 8192.0, eps, delta)
        .with_clients(3)
        .with_backend(LrBackend::Mpc(VflConfig::new(3).with_seed(29)));
    let w = mech.fit(&mut rng, &train);
    let acc = accuracy(&w, &test);
    println!("\njoint DP fraud model test accuracy: {acc:.3}");
    println!("(weights live at the server; raw features never left any organization)");
}
