//! Offline stand-in for the `serde` crate.
//!
//! This workspace builds hermetically (no crates.io), so `serde` here is a
//! small in-tree framework rather than the upstream visitor architecture:
//!
//! * [`Serialize`] writes a value *directly as JSON* into a `String`
//!   (`write_json` / [`Serialize::to_json`]). That is the only
//!   serialization format SQM needs — stats dumps, trace exports and the
//!   privacy ledger all emit JSON.
//! * [`Deserialize`] is a marker trait: nothing in the workspace parses
//!   serialized data back yet. Deriving it keeps type signatures
//!   source-compatible with upstream serde for a later swap.
//! * `#[derive(Serialize, Deserialize)]` come from the compat
//!   `serde_derive` and support non-generic structs and unit enums.
//!
//! Conventions: `f64`/`f32` non-finite values serialize as `null` (JSON
//! has no NaN/Infinity); [`std::time::Duration`] serializes as fractional
//! seconds (`f64`), which callers should account for when consuming dumps.

// Let the derive macros' generated `::serde::...` paths resolve when the
// derives are used inside this crate's own tests.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// Serialize a value as JSON text.
pub trait Serialize {
    /// Append this value's JSON encoding to `out`.
    fn write_json(&self, out: &mut String);

    /// This value's JSON encoding as a fresh string.
    fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }
}

/// Marker for deserializable types (no parsing implemented in-tree).
pub trait Deserialize: Sized {}

/// JSON encoding helpers shared by manual and derived impls.
pub mod json {
    /// Write `s` as a JSON string literal with escaping.
    pub fn write_str(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Write a float; non-finite values become `null`.
    pub fn write_f64(out: &mut String, v: f64) {
        if v.is_finite() {
            // `{:?}` is Rust's shortest round-trip float formatting.
            out.push_str(&format!("{v:?}"));
        } else {
            out.push_str("null");
        }
    }
}

macro_rules! impl_serialize_display_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {}
    )*};
}
impl_serialize_display_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

impl Serialize for f64 {
    fn write_json(&self, out: &mut String) {
        json::write_f64(out, *self);
    }
}
impl Deserialize for f64 {}

impl Serialize for f32 {
    fn write_json(&self, out: &mut String) {
        json::write_f64(out, f64::from(*self));
    }
}
impl Deserialize for f32 {}

impl Serialize for str {
    fn write_json(&self, out: &mut String) {
        json::write_str(out, self);
    }
}

impl Serialize for String {
    fn write_json(&self, out: &mut String) {
        json::write_str(out, self);
    }
}
impl Deserialize for String {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.write_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}
impl<T: Serialize> Deserialize for Vec<T> {}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}
impl<T: Serialize> Deserialize for Option<T> {}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(out, &k.to_string());
            out.push(':');
            v.write_json(out);
        }
        out.push('}');
    }
}
impl<K: std::fmt::Display, V: Serialize> Deserialize for std::collections::BTreeMap<K, V> {}

impl Serialize for std::time::Duration {
    /// Durations serialize as fractional seconds.
    fn write_json(&self, out: &mut String) {
        json::write_f64(out, self.as_secs_f64());
    }
}
impl Deserialize for std::time::Duration {}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        self.0.write_json(out);
        out.push(',');
        self.1.write_json(out);
        out.push(']');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[derive(Serialize, Deserialize)]
    struct Named {
        a: u64,
        b: Vec<f64>,
        label: String,
    }

    #[derive(Serialize, Deserialize)]
    struct Newtype(u64);

    #[derive(Serialize, Deserialize)]
    enum Kind {
        Alpha,
        Beta,
    }

    #[test]
    fn derive_named_struct() {
        let v = Named {
            a: 7,
            b: vec![1.5, 2.0],
            label: "x\"y".to_string(),
        };
        assert_eq!(v.to_json(), r#"{"a":7,"b":[1.5,2.0],"label":"x\"y"}"#);
    }

    #[test]
    fn derive_newtype_is_transparent() {
        assert_eq!(Newtype(42).to_json(), "42");
    }

    #[test]
    fn derive_unit_enum_as_string() {
        assert_eq!(Kind::Alpha.to_json(), "\"Alpha\"");
        assert_eq!(Kind::Beta.to_json(), "\"Beta\"");
    }

    #[test]
    fn primitives_and_containers() {
        assert_eq!(1.25f64.to_json(), "1.25");
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!(true.to_json(), "true");
        assert_eq!(Some(3u32).to_json(), "3");
        assert_eq!(Option::<u32>::None.to_json(), "null");
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), 1u64);
        assert_eq!(m.to_json(), r#"{"k":1}"#);
        assert_eq!(std::time::Duration::from_millis(1500).to_json(), "1.5");
    }

    #[test]
    fn string_escaping() {
        assert_eq!("a\nb\t\"c\"\\".to_json(), r#""a\nb\t\"c\"\\""#);
    }
}
