//! Offline stand-in for the `criterion` crate (API subset).
//!
//! Provides the types and macros the `sqm-bench` suite uses —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`],
//! [`black_box`], `criterion_group!`, `criterion_main!` — backed by a
//! simple adaptive wall-clock loop: each benchmark is warmed up once,
//! then timed in growing batches until it accumulates enough samples or
//! runtime, and the median ns/iteration is printed. No statistical
//! analysis, HTML reports, or persisted baselines; for regression checks,
//! compare the printed medians across runs.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Time `routine`, first warming up, then sampling in growing batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        let budget = Duration::from_millis(200);
        let started = Instant::now();
        let mut batch = 1usize;
        while self.samples.len() < self.target_samples && started.elapsed() < budget {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let per_iter = t0.elapsed() / batch as u32;
            self.samples.push(per_iter);
            // Grow batches for fast routines so timer overhead amortizes.
            if per_iter < Duration::from_micros(50) {
                batch = (batch * 4).min(16_384);
            }
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("bench {name:<50} (no samples)");
            return;
        }
        self.samples.sort();
        let median = self.samples[self.samples.len() / 2];
        println!(
            "bench {name:<50} median {:>12.3} us/iter ({} samples)",
            median.as_secs_f64() * 1e6,
            self.samples.len()
        );
    }
}

fn run_bench(name: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        target_samples: sample_size,
    };
    f(&mut bencher);
    bencher.report(name);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_bench(&format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            f(b)
        });
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.effective_sample_size(),
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_bench(&id.id, self.effective_sample_size(), |b| f(b));
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    fn effective_sample_size(&self) -> usize {
        if self.sample_size == 0 {
            30
        } else {
            self.sample_size
        }
    }
}

/// Upstream-compatible: wire benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Upstream-compatible: produce `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_smoke() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("group");
        g.sample_size(10);
        g.bench_function(BenchmarkId::new("f", 3), |b| b.iter(|| black_box(3 * 3)));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &v| {
            b.iter(|| black_box(v * v))
        });
        g.finish();
    }
}
