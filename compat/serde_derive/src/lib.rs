//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! shapes SQM actually derives on: non-generic structs with named fields,
//! tuple structs, and enums with unit variants. The generated code targets
//! the compat `serde` crate's JSON-writing trait (see `compat/serde`),
//! not upstream serde's visitor architecture.
//!
//! Written against bare `proc_macro` (no syn/quote in this offline
//! environment): the input token stream is walked by hand and the impl is
//! emitted as a formatted string.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// `struct S { a: T, b: U }` — field names in declaration order.
    Named(Vec<String>),
    /// `struct S(T, U);` — field count.
    Tuple(usize),
    /// `struct S;`
    Unit,
    /// `enum E { A, B }` — unit variant names.
    UnitEnum(Vec<String>),
}

struct TypeDef {
    name: String,
    shape: Shape,
}

fn parse_type_def(input: TokenStream, derive: &str) -> TypeDef {
    let mut iter = input.into_iter().peekable();
    // Skip attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
    let kind = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                panic!("derive({derive}): unsupported item starting with `{s}`");
            }
            other => panic!("derive({derive}): unexpected token {other:?}"),
        }
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive({derive}): expected type name, got {other:?}"),
    };
    let shape = match iter.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => panic!(
            "derive({derive}): generic type `{name}` is not supported by the compat serde derive; \
             implement the trait by hand"
        ),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Shape::Named(parse_named_fields(g.stream(), derive, &name))
            } else {
                Shape::UnitEnum(parse_unit_variants(g.stream(), derive, &name))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
        other => panic!("derive({derive}): unexpected token after `{name}`: {other:?}"),
    };
    TypeDef { name, shape }
}

/// Extract field names from a named-fields body:
/// `attrs* vis? NAME : TYPE ,` repeated, with `<...>` depth tracking so
/// commas inside generic arguments don't split fields.
fn parse_named_fields(stream: TokenStream, derive: &str, name: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Field start: skip attributes and visibility.
        let field = loop {
            match iter.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => {
                    panic!("derive({derive}) on {name}: unexpected token {other:?} in field list")
                }
            }
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!(
                "derive({derive}) on {name}: expected `:` after field `{field}`, got {other:?}"
            ),
        }
        fields.push(field);
        // Consume the type up to a top-level comma.
        let mut depth = 0i32;
        loop {
            match iter.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut saw_any = false;
    for tt in stream {
        saw_any = true;
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    if saw_any {
        count + 1
    } else {
        0
    }
}

fn parse_unit_variants(stream: TokenStream, derive: &str, name: &str) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        let variant = loop {
            match iter.next() {
                None => return variants,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => {
                    panic!("derive({derive}) on {name}: unexpected token {other:?} in enum body")
                }
            }
        };
        variants.push(variant.clone());
        // Only unit variants (optionally `= discriminant`) are supported.
        loop {
            match iter.next() {
                None => return variants,
                Some(TokenTree::Group(_)) => panic!(
                    "derive({derive}) on {name}: variant `{variant}` carries data; the compat \
                     serde derive only supports unit variants — implement the trait by hand"
                ),
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(_) => {}
            }
        }
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_type_def(input, "Serialize");
    let name = &def.name;
    let body = match &def.shape {
        Shape::Named(fields) => {
            let mut b = String::from("out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    b.push_str("out.push(',');\n");
                }
                b.push_str(&format!(
                    "out.push_str(\"\\\"{f}\\\":\");\n\
                     ::serde::Serialize::write_json(&self.{f}, out);\n"
                ));
            }
            b.push_str("out.push('}');");
            b
        }
        Shape::Tuple(1) => {
            // Newtype structs serialize transparently, like upstream serde.
            "::serde::Serialize::write_json(&self.0, out);".to_string()
        }
        Shape::Tuple(n) => {
            let mut b = String::from("out.push('[');\n");
            for i in 0..*n {
                if i > 0 {
                    b.push_str("out.push(',');\n");
                }
                b.push_str(&format!(
                    "::serde::Serialize::write_json(&self.{i}, out);\n"
                ));
            }
            b.push_str("out.push(']');");
            b
        }
        Shape::Unit => "out.push_str(\"null\");".to_string(),
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\","))
                .collect();
            format!(
                "let variant = match self {{ {} }};\n\
                 ::serde::json::write_str(out, variant);",
                arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn write_json(&self, out: &mut ::std::string::String) {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("derive(Serialize): generated impl failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_type_def(input, "Deserialize");
    let name = &def.name;
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("derive(Deserialize): generated impl failed to parse")
}
