//! Offline stand-in for the `proptest` crate (API subset).
//!
//! Supports the property-test surface SQM uses: the [`proptest!`] macro,
//! range strategies (`0u64..P`, `-1.0f64..1.0`, `0usize..=4`),
//! [`strategy::any`], [`collection::vec`], `prop_map`, and the
//! `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Semantics differ from upstream in two deliberate ways: sampling is
//! plain uniform (no bias toward edge cases) and there is **no input
//! shrinking** — a failing case panics with the sampled values visible in
//! the assertion message. Case count defaults to 64 per property and is
//! overridable via `PROPTEST_CASES`.

use rand::Rng;

pub mod test_runner {
    pub use rand::rngs::StdRng as TestRng;
    use rand::SeedableRng;

    /// Deterministic per-process RNG for property tests. A fixed seed keeps
    /// CI stable; vary `PROPTEST_SEED` to explore other streams.
    pub fn fresh_rng() -> TestRng {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0x5153_4D50_524F_5054u64);
        TestRng::seed_from_u64(seed)
    }

    /// Cases per property (`PROPTEST_CASES`, default 64).
    pub fn case_count() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }
}

pub mod strategy {
    use super::*;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value;

        /// Transform generated values (upstream `prop_map`).
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut test_runner::TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of the given value (upstream `Just`).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut test_runner::TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_float_range_strategy!(f32, f64);

    /// Whole-domain sampling for [`any`].
    pub trait Arbitrary {
        fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
            rng.gen()
        }
    }

    impl Arbitrary for f64 {
        /// Finite floats over a wide magnitude range (log-uniform-ish),
        /// including zero and both signs.
        fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
            let exp = rng.gen_range(-300i32..300);
            let mantissa = rng.gen_range(-1.0f64..1.0);
            mantissa * 10f64.powi(exp)
        }
    }

    /// Strategy sampling the full domain of `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut test_runner::TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Upstream `any::<T>()`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Length specification for [`vec`]: an exact length or a half-open
    /// range of lengths.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                min: len,
                max_exclusive: len + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "collection::vec: empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    /// `Vec` strategy with per-case sampled length.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let len = rng.gen_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over sampled inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                // Bind each strategy once, then shadow the name with the
                // sampled value inside the loop.
                $(let $arg = $strat;)*
                let mut proptest_rng = $crate::test_runner::fresh_rng();
                let cases = $crate::test_runner::case_count();
                for _ in 0..cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut proptest_rng);)*
                    $body
                }
            }
        )*
    };
}

/// Upstream-compatible assertion macros. Without shrinking these are plain
/// assertions; the panic message carries the sampled values.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
/// (Upstream re-samples; here the case is simply skipped via `continue`,
/// which is sound because the macro expands inside the sampling loop.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(x in 10u64..20, y in -1.0f64..1.0, z in 0usize..=3) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
            prop_assert!(z <= 3);
        }

        #[test]
        fn any_and_map(v in any::<i64>(), w in (0u64..5).prop_map(|v| v * 2)) {
            let _ = v;
            prop_assert_eq!(w % 2, 0);
        }

        #[test]
        fn vec_strategy(xs in collection::vec(-10.0f64..10.0, 12)) {
            prop_assert_eq!(xs.len(), 12);
            prop_assert!(xs.iter().all(|x| (-10.0..10.0).contains(x)));
        }

        #[test]
        fn assume_skips(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }
}
