//! Offline stand-in for the `bytes` crate (API subset).
//!
//! The MPC wire format only needs an owned byte buffer with a read
//! cursor ([`Bytes`] + [`Buf`]) and an append-only builder
//! ([`BytesMut`] + [`BufMut`]). Cheap zero-copy slicing from upstream
//! `bytes` is not reproduced — encode/decode here copy, which is fine
//! for an accounting-oriented wire format.

/// Read-side cursor operations.
pub trait Buf {
    /// Bytes not yet consumed.
    fn remaining(&self) -> usize;

    /// Copy `dst.len()` bytes out, advancing the cursor. Panics if fewer
    /// than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Skip `cnt` bytes. Panics if fewer remain.
    fn advance(&mut self, cnt: usize);
}

/// Write-side append operations.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

/// An owned, immutable byte buffer with an internal read cursor.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// Unconsumed length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unconsumed bytes as a slice.
    pub fn as_ref_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_ref_slice()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "copy_to_slice out of bounds");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance out of bounds");
        self.pos += cnt;
    }
}

/// Growable byte builder; [`BytesMut::freeze`] converts to [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_freeze_consume() {
        let mut b = BytesMut::with_capacity(8);
        b.put_slice(&[1, 2, 3, 4]);
        b.put_u8(5);
        let mut frozen = b.freeze();
        assert_eq!(frozen.len(), 5);
        let mut out = [0u8; 2];
        frozen.copy_to_slice(&mut out);
        assert_eq!(out, [1, 2]);
        assert_eq!(frozen.len(), 3);
        frozen.advance(1);
        assert!(frozen.has_remaining());
        let mut rest = [0u8; 2];
        frozen.copy_to_slice(&mut rest);
        assert_eq!(rest, [4, 5]);
        assert!(!frozen.has_remaining());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn overread_panics() {
        let mut b = Bytes::from_static(&[1]);
        let mut out = [0u8; 2];
        b.copy_to_slice(&mut out);
    }
}
