//! Offline stand-in for the `rand` crate (API subset).
//!
//! This workspace builds in a hermetic environment with no crates.io
//! access, so the handful of `rand 0.8` items SQM uses are reimplemented
//! here under the same paths: [`rngs::StdRng`], [`SeedableRng`], [`Rng`]
//! (`gen`, `gen_range`, `gen_bool`) and [`RngCore`].
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), which is fine for SQM: no
//! test or protocol depends on the exact stream, only on seeded
//! determinism and statistical quality.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (only the `seed_from_u64` entry point is used).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly "from the whole type" via [`Rng::gen`]
/// (the role of `Standard`/`Distribution` in upstream rand).
pub trait StandardSample {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = u128::sample_standard(rng) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = u128::sample_standard(rng) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_128 {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.wrapping_sub(self.start) as u128;
                let v = u128::sample_standard(rng) % span;
                self.start.wrapping_add(v as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = end.wrapping_sub(start) as u128;
                if span == u128::MAX {
                    return u128::sample_standard(rng) as $t;
                }
                let v = u128::sample_standard(rng) % (span + 1);
                start.wrapping_add(v as $t)
            }
        }
    )*};
}
impl_sample_range_128!(u128, i128);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = f64::sample_standard(rng) as $t;
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // xoshiro256++ must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_hit_endpoints() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..=3)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
        for _ in 0..100 {
            let v = rng.gen_range(1.0f64..2.0);
            assert!((1.0..2.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn u128_uses_both_words() {
        let mut rng = StdRng::seed_from_u64(4);
        let v: u128 = rng.gen();
        assert!(v > u64::MAX as u128 || rng.gen::<u128>() > u64::MAX as u128);
    }
}
