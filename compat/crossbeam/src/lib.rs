//! Offline stand-in for the `crossbeam` crate (API subset).
//!
//! The MPC transport needs exactly one thing from crossbeam: unbounded
//! channels whose `Sender` is `Clone` and whose endpoints are `Sync`
//! (endpoints are shared by reference into scoped party threads). This
//! implementation uses a `Mutex<VecDeque>` + `Condvar` per channel —
//! not lock-free, but the MPC engine exchanges one batched payload per
//! round, so channel overhead is negligible against share arithmetic.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// Sending half; cloneable, unbounded, never blocks.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; blocks on [`Receiver::recv`] until a message
    /// arrives or every sender disconnects.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned when sending on a channel (never produced here:
    /// queues are unbounded and outlive senders; kept for API parity).
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when every sender is gone and
    /// the queue is drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.push_back(value);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::Relaxed);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake any receiver blocked in recv().
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives; `Err(RecvError)` once all senders
        /// have disconnected and the queue is empty.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive of whatever is already queued.
        pub fn try_recv(&self) -> Option<T> {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn fifo_roundtrip() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv().unwrap(), i);
            }
        }

        #[test]
        fn recv_blocks_until_send() {
            let (tx, rx) = unbounded();
            thread::scope(|s| {
                s.spawn(move || {
                    thread::sleep(std::time::Duration::from_millis(10));
                    tx.send(7u32).unwrap();
                });
                assert_eq!(rx.recv().unwrap(), 7);
            });
        }

        #[test]
        fn disconnect_unblocks_receiver() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn cloned_senders_count() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            drop(tx);
            tx2.send(1).unwrap();
            drop(tx2);
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
