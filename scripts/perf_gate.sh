#!/usr/bin/env bash
# Run the deterministic perf suites and gate them against the committed
# baseline (bench/baseline.json).
#
# Usage: scripts/perf_gate.sh [--warn-only] [--suite small|full]
#
#   --warn-only   report regressions but exit 0 (what CI uses: shared
#                 runners are too noisy to fail the build on wall-clock)
#   --suite TIER  workload tier, default "small"
#
# Refresh the baseline after an intentional perf or protocol change:
#   cargo run --release -p sqm-experiments --bin sqm-perf -- --suite small --write-baseline
set -euo pipefail
cd "$(dirname "$0")/.."

SUITE=small
EXTRA=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --warn-only) EXTRA+=(--warn-only) ;;
    --suite)
      shift
      SUITE="$1"
      ;;
    *)
      echo "unknown argument: $1" >&2
      exit 2
      ;;
  esac
  shift
done

# Stamp artifacts with the commit under test when git metadata is present.
SQM_COMMIT="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
export SQM_COMMIT

cargo run --release -p sqm-experiments --bin sqm-perf -- \
  --suite "$SUITE" --gate --gate-self-test "${EXTRA[@]:-}"
