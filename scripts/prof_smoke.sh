#!/usr/bin/env bash
# Cost-profiler smoke test: run one Table II workload twice with `--prof`
# at the same seed and assert the deterministic artifacts behave as
# documented — the folded collapsed-stack file is non-empty and
# byte-identical across the two runs, prof_<seed>.json parses as JSON and
# carries no wall-clock field, and the flamegraph HTML is self-contained.
# Outputs land in results/prof_smoke/ so CI can upload them as artifacts.
#
# Usage: scripts/prof_smoke.sh [seed]   (default 7)
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${1:-7}"
OUT=results/prof_smoke
rm -rf "$OUT"
mkdir -p "$OUT/run1" "$OUT/run2"

cargo build --release -p sqm-experiments

for run in run1 run2; do
  (
    cd "$OUT/$run"
    # The binary writes results/prof_<seed>.* relative to its cwd.
    timeout 420 "$(git rev-parse --show-toplevel)/target/release/table2_dim_scaling" \
      --prof --seed "$SEED" --runs 1 >run.log 2>&1
  )
done

FOLDED1="$OUT/run1/results/prof_$SEED.folded"
FOLDED2="$OUT/run2/results/prof_$SEED.folded"
JSON1="$OUT/run1/results/prof_$SEED.json"
JSON2="$OUT/run2/results/prof_$SEED.json"
HTML1="$OUT/run1/results/prof_$SEED.html"

[ -s "$FOLDED1" ] || { echo "error: $FOLDED1 is empty or missing" >&2; exit 1; }
cmp "$FOLDED1" "$FOLDED2" || {
  echo "error: folded profiles differ across same-seed runs" >&2
  diff "$FOLDED1" "$FOLDED2" >&2 || true
  exit 1
}
cmp "$JSON1" "$JSON2" || {
  echo "error: JSON profiles differ across same-seed runs" >&2
  exit 1
}
python3 -m json.tool "$JSON1" >/dev/null
if grep -q '"wall' "$JSON1"; then
  echo "error: prof JSON must not carry wall-clock fields" >&2
  exit 1
fi
grep -q 'engine;' "$FOLDED1" || { echo "error: no engine frames in folded output" >&2; exit 1; }
grep -q 'skellam_draw' "$FOLDED1" || { echo "error: no Skellam frames in folded output" >&2; exit 1; }
[ -s "$HTML1" ] || { echo "error: flamegraph HTML missing" >&2; exit 1; }
if grep -q 'http://\|https://' "$HTML1"; then
  echo "error: flamegraph HTML must be self-contained (no external refs)" >&2
  exit 1
fi

# Flatten the byte-identical artifacts to the top of $OUT for upload.
cp "$FOLDED1" "$JSON1" "$HTML1" "$OUT/"
echo "prof smoke OK: $(wc -l <"$FOLDED1") folded frames, byte-identical across runs"
