#!/usr/bin/env bash
# Live-telemetry smoke test: start a Table II workload with `--live`,
# fetch `/metrics` and `/snapshot` over HTTP *while the run is in
# progress*, and assert both are non-empty and well-formed. Outputs land
# in results/live_smoke/ so CI can upload them as artifacts.
#
# Usage: scripts/live_smoke.sh [addr]   (default 127.0.0.1:9184)
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${1:-127.0.0.1:9184}"
OUT=results/live_smoke
mkdir -p "$OUT"

# Build up front so the curl-retry window measures the run, not rustc.
cargo build --release -p sqm-experiments

timeout 420 cargo run --release -p sqm-experiments --bin table2_dim_scaling -- \
  --live "$ADDR" >"$OUT/run.log" 2>&1 &
RUN_PID=$!
trap 'kill "$RUN_PID" 2>/dev/null || true' EXIT

echo "workload pid $RUN_PID; polling http://$ADDR/metrics"
for i in $(seq 1 120); do
  if ! kill -0 "$RUN_PID" 2>/dev/null; then
    echo "error: workload exited before the endpoint answered" >&2
    cat "$OUT/run.log" >&2
    exit 1
  fi
  if curl -sf "http://$ADDR/metrics" -o "$OUT/metrics.prom" \
      && [ -s "$OUT/metrics.prom" ]; then
    break
  fi
  sleep 1
done
[ -s "$OUT/metrics.prom" ] || { echo "error: /metrics never answered" >&2; exit 1; }

curl -sf "http://$ADDR/snapshot" -o "$OUT/snapshot.json"

# Well-formedness: Prometheus text exposition with the live family and
# parseable JSON naming the run.
grep -q '^# TYPE sqm_live_runs_started_total counter' "$OUT/metrics.prom"
grep -q '^sqm_live_runs_started_total [0-9]' "$OUT/metrics.prom"
python3 -m json.tool "$OUT/snapshot.json" >/dev/null
grep -q '"runs_started"' "$OUT/snapshot.json"
echo "mid-run /metrics and /snapshot OK:"
grep '^sqm_live_runs_started_total\|^sqm_live_run_in_progress' "$OUT/metrics.prom" || true

wait "$RUN_PID"
STATUS=$?
trap - EXIT
echo "workload finished with status $STATUS"
exit "$STATUS"
