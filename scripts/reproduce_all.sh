#!/usr/bin/env bash
# Regenerate every table and figure of the paper at laptop scale.
# Usage: scripts/reproduce_all.sh [--paper] [--runs N]
set -euo pipefail
cd "$(dirname "$0")/.."

ARGS=("$@")
BINS=(
  fig2_pca
  fig3_lr
  fig4_gamma_overhead
  fig5_approx_poly
  table1_complexity
  table2_dim_scaling
  table4_record_scaling
  table5_client_scaling
  ablation_noise
  ablation_taylor
  ext_ridge
  ext_frequency
)

mkdir -p results
for bin in "${BINS[@]}"; do
  echo "=== $bin ==="
  cargo run --release -p sqm-experiments --bin "$bin" -- "${ARGS[@]:-}" | tee "results/$bin.txt"
done

# Cost profile of the headline timing workload: where the rounds, bytes and
# field operations go, plus the batching-opportunity report. Deterministic
# in the seed — results/prof_<seed>.{folded,json,html}.
echo "=== profiling (table2_dim_scaling --prof) ==="
cargo run --release -p sqm-experiments --bin table2_dim_scaling -- \
  --prof "${ARGS[@]:-}" | tee "results/table2_dim_scaling.prof.txt"
echo "All outputs written to results/."
