#!/usr/bin/env bash
# Serving smoke test: start `sqm-serve` (multi-tenant endpoint + seeded
# closed-loop load with request tracing on + serve bench suite), curl
# `/metrics` and `/status` *while the server is up*, and assert the run
# produced at least one enforced budget refusal, per-tenant
# request-duration samples, the deterministic slow-request dump, the
# HTML report with the "Serving SLO" section, and a well-formed
# BENCH_serve.json. Outputs land in results/serve_smoke/ so CI can
# upload them as artifacts.
#
# Usage: scripts/serve_smoke.sh [addr]   (default 127.0.0.1:9190)
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${1:-127.0.0.1:9190}"
OUT=results/serve_smoke
mkdir -p "$OUT"

# Build up front so the curl-retry window measures the run, not rustc.
cargo build --release -p sqm-experiments --bin sqm-serve

timeout 420 cargo run --release -p sqm-experiments --bin sqm-serve -- \
  --addr "$ADDR" --hold-secs 45 --out "$OUT" \
  --gate --warn-only >"$OUT/run.log" 2>&1 &
RUN_PID=$!
trap 'kill "$RUN_PID" 2>/dev/null || true' EXIT

echo "sqm-serve pid $RUN_PID; polling http://$ADDR/metrics"
for i in $(seq 1 120); do
  if ! kill -0 "$RUN_PID" 2>/dev/null; then
    echo "error: sqm-serve exited before the endpoint answered" >&2
    cat "$OUT/run.log" >&2
    exit 1
  fi
  # The refusal counter appears once the load run inside the binary has
  # hit a tenant's budget; keep polling until it does.
  if curl -sf "http://$ADDR/metrics" -o "$OUT/metrics.prom" \
      && grep -q '^sqm_serve_budget_refusals [1-9]' "$OUT/metrics.prom"; then
    break
  fi
  sleep 1
done

# The budget gate must have refused at least one release, and the
# scheduler counters must be present alongside it.
grep -q '^sqm_serve_budget_refusals [1-9]' "$OUT/metrics.prom" \
  || { echo "error: no budget refusal in /metrics" >&2; cat "$OUT/run.log" >&2; exit 1; }
grep -q '^sqm_serve_releases_admitted [1-9]' "$OUT/metrics.prom"

curl -sf "http://$ADDR/status" -o "$OUT/status.json"
python3 -m json.tool "$OUT/status.json" >/dev/null
grep -q '"tenants"' "$OUT/status.json"

# The bench artifact is written before the hold window, so it must exist
# (and parse) while the server is still up.
for i in $(seq 1 60); do
  [ -s "$OUT/BENCH_serve.json" ] && break
  sleep 1
done
python3 -m json.tool "$OUT/BENCH_serve.json" >/dev/null
grep -q '"suite":"serve"' "$OUT/BENCH_serve.json"

# Request tracing: the load ran with tracing on, so by now (the bench
# artifact lands *after* the load) every tenant's request-duration
# summary must carry samples, and the span collector must have written
# the deterministic request log plus the SLO report.
curl -sf "http://$ADDR/metrics" -o "$OUT/metrics.prom"
for t in 0 1 2; do
  grep -q "^sqm_serve_request_duration_ns_load_${t}_count [1-9]" "$OUT/metrics.prom" \
    || { echo "error: no request-duration samples for tenant load-$t" >&2
         grep '^sqm_serve_' "$OUT/metrics.prom" >&2 || true; exit 1; }
done
# Smoke seed is 20250808, so the pinned-zero-threshold dump (the full
# deterministic request log) is slowreq_20250808.jsonl.
[ -s "$OUT/slowreq_20250808.jsonl" ] \
  || { echo "error: missing slowreq_20250808.jsonl" >&2; exit 1; }
python3 -c 'import json,sys; [json.loads(l) for l in open(sys.argv[1])]' \
  "$OUT/slowreq_20250808.jsonl"
grep -q 'Serving SLO' "$OUT/serve_report.html"

echo "mid-run /metrics, /status, tracing artifacts and BENCH_serve.json OK:"
grep '^sqm_serve_' "$OUT/metrics.prom" || true

# Done probing; end the hold window early and collect the exit status.
kill "$RUN_PID" 2>/dev/null || true
wait "$RUN_PID" && STATUS=$? || STATUS=$?
trap - EXIT
# 143 = terminated by our own SIGTERM during the hold window: success.
if [ "$STATUS" -ne 0 ] && [ "$STATUS" -ne 143 ]; then
  echo "sqm-serve finished with unexpected status $STATUS" >&2
  cat "$OUT/run.log" >&2
  exit "$STATUS"
fi
echo "sqm-serve smoke OK (status $STATUS)"
