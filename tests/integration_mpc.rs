//! Cross-checks between the BGW-backed protocols and their plaintext
//! simulations, plus the cost-model trends behind Tables I, II, IV and V.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqm::core::{Monomial, Polynomial};
use sqm::datasets::SpectralSpec;
use sqm::linalg::Matrix;
use sqm::vfl::covariance::{covariance_skellam, covariance_skellam_plaintext};
use sqm::vfl::gradient::gradient_sum_skellam;
use sqm::vfl::{eval_polynomial_skellam, ColumnPartition, VflConfig};
use std::time::Duration;

/// The BGW covariance equals the plaintext integer computation up to
/// quantization randomness (and exactly equals the true Gram matrix scaled
/// by gamma^2, up to rounding, when mu = 0).
#[test]
fn mpc_covariance_cross_check() {
    let data = SpectralSpec::new(40, 8).with_seed(11).generate();
    let partition = ColumnPartition::even(8, 4);
    let gamma = 8192.0;
    let out = covariance_skellam(&data, &partition, gamma, 0.0, &VflConfig::fast(4));
    let scaled = out.c_hat.scaled(1.0 / (gamma * gamma));
    let err = scaled.sub(&data.gram()).frobenius_norm() / data.gram().frobenius_norm();
    assert!(err < 1e-3, "relative error {err}");

    let mut rng = StdRng::seed_from_u64(1);
    let plain =
        covariance_skellam_plaintext(&mut rng, &data, gamma, 0.0, 4).scaled(1.0 / (gamma * gamma));
    let diff = scaled.sub(&plain).frobenius_norm() / plain.frobenius_norm();
    assert!(diff < 1e-3, "plaintext/MPC divergence {diff}");
}

/// Generic circuit path agrees with the covariance fast path.
#[test]
fn generic_circuit_agrees_with_covariance_fast_path() {
    let data = SpectralSpec::new(12, 3).with_seed(12).generate();
    let partition = ColumnPartition::even(3, 3);
    let gamma = 4096.0;
    let cfg = VflConfig::fast(3);
    let fast = covariance_skellam(&data, &partition, gamma, 0.0, &cfg);

    let poly = Polynomial::covariance(3);
    let (vals, _) = eval_polynomial_skellam(&poly, &data, &partition, gamma, 0.0, &cfg);
    // The generic path amplifies by gamma^(lambda+1) = gamma^3 and returns
    // down-scaled values; the fast path returns gamma^2-amplified ints.
    for j in 0..3 {
        for k in 0..3 {
            let a = vals[j * 3 + k];
            let b = fast.c_hat[(j, k)] / (gamma * gamma);
            assert!((a - b).abs() < 2e-3, "({j},{k}): generic {a} fast {b}");
        }
    }
}

/// Table I: covariance communication grows with n^2 and is independent of m.
#[test]
fn covariance_communication_scales_with_n_squared_not_m() {
    let cfg = VflConfig::fast(4);
    let run = |m: usize, n: usize| {
        let data = SpectralSpec::new(m, n).with_seed(13).generate();
        let partition = ColumnPartition::even(n, 4);
        covariance_skellam(&data, &partition, 16.0, 1.0, &cfg)
    };
    let base = run(50, 8);
    let more_records = run(400, 8);
    let more_dims = run(50, 16);
    // Input sharing bytes grow with m, but compute/noise/open bytes do not.
    let nonshare = |s: &sqm::mpc::RunStats| s.total.bytes - s.phases["input"].bytes;
    assert_eq!(
        nonshare(&base.stats),
        nonshare(&more_records.stats),
        "non-input communication must not depend on m"
    );
    let r = nonshare(&more_dims.stats) as f64 / nonshare(&base.stats) as f64;
    assert!(
        (3.0..5.0).contains(&r),
        "n doubling should ~4x bytes, got {r}"
    );
}

/// Table II's headline: enforcing DP costs one fixed communication round
/// (the noise-share exchange) regardless of the data dimension, while the
/// total protocol cost grows with n — so the relative DP overhead vanishes.
#[test]
fn dp_overhead_is_one_round_regardless_of_dimension() {
    let cfg = VflConfig::new(4)
        .with_latency(Duration::from_millis(100))
        .with_seed(3)
        .with_trace(false);
    let mut prev_total_bytes = 0u64;
    for n in [6usize, 12, 24] {
        let data = SpectralSpec::new(30, n).with_seed(14).generate();
        let partition = ColumnPartition::even(n, 4);
        let out = covariance_skellam(&data, &partition, 18.0, 10.0, &cfg);
        // DP noise: exactly one synchronous round at every dimension.
        assert_eq!(out.stats.phases["dp_noise"].rounds, 1, "n={n}");
        // The DP round's latency cost is bounded by one hop...
        let dp = out.stats.phase_time("dp_noise");
        assert!(dp < Duration::from_millis(150), "n={n}: dp={dp:?}");
        // ...while total traffic keeps growing with n.
        assert!(out.stats.total.bytes > prev_total_bytes, "n={n}");
        prev_total_bytes = out.stats.total.bytes;
    }
}

/// The gradient protocol opens exactly the noisy sum — its output matches
/// the direct Eq. 9 computation when noise and quantization are effectively
/// disabled.
#[test]
fn mpc_gradient_cross_check_high_precision() {
    let mut raw = Vec::new();
    let mut rng = StdRng::seed_from_u64(15);
    use rand::Rng;
    for _ in 0..10 {
        let mut row: Vec<f64> = (0..5).map(|_| rng.gen::<f64>() * 0.4 - 0.2).collect();
        row.push(f64::from(rng.gen::<bool>()));
        raw.push(row);
    }
    let data = Matrix::from_rows(&raw);
    let d = 5;
    let w: Vec<f64> = (0..d).map(|j| 0.1 * (j as f64 - 2.0)).collect();
    let batch: Vec<usize> = (0..10).collect();

    let mut truth = vec![0.0; d];
    for &i in &batch {
        let row = data.row(i);
        let wx: f64 = w.iter().zip(&row[..d]).map(|(a, b)| a * b).sum();
        for k in 0..d {
            truth[k] += (0.5 + wx / 4.0 - row[d]) * row[k];
        }
    }

    let partition = ColumnPartition::even(d + 1, 3);
    let out = gradient_sum_skellam(
        &data,
        &partition,
        &batch,
        &w,
        16384.0,
        0.0,
        &VflConfig::fast(3),
    );
    for (g, t) in out.grad_sum.iter().zip(&truth) {
        assert!((g - t).abs() < 5e-3, "got {g} want {t}");
    }
}

/// Table V trend: more clients => more rounds-bytes but the protocol stays
/// correct, and round count is unchanged (synchronous batching).
#[test]
fn client_scaling_preserves_correctness_and_rounds() {
    let data = SpectralSpec::new(24, 12).with_seed(16).generate();
    let gamma = 2048.0;
    let gram = data.gram();
    let mut bytes_prev = 0u64;
    for p in [2usize, 4, 6] {
        let partition = ColumnPartition::even(12, p);
        let out = covariance_skellam(&data, &partition, gamma, 0.0, &VflConfig::fast(p));
        let err = out
            .c_hat
            .scaled(1.0 / (gamma * gamma))
            .sub(&gram)
            .frobenius_norm()
            / gram.frobenius_norm();
        assert!(err < 1e-3, "P={p}: err {err}");
        assert_eq!(out.stats.total.rounds, 4, "P={p}");
        assert!(out.stats.total.bytes > bytes_prev, "bytes must grow with P");
        bytes_prev = out.stats.total.bytes;
    }
}

/// A degree-3, multi-client polynomial through the full stack (quantize ->
/// circuit -> BGW -> noise -> open -> rescale).
#[test]
fn degree3_polynomial_full_stack() {
    let data = Matrix::from_rows(&[
        vec![0.2, 0.4, -0.3, 0.1],
        vec![-0.1, 0.2, 0.5, -0.2],
        vec![0.3, -0.2, 0.1, 0.4],
    ]);
    let f = Polynomial::one_dimensional(
        4,
        vec![
            Monomial::new(2.0, vec![(0, 1), (1, 1), (2, 1)]),
            Monomial::new(-1.0, vec![(3, 2)]),
            Monomial::constant(0.25),
        ],
    );
    let truth = f.sum_over((0..3).map(|i| data.row(i)))[0];
    let partition = ColumnPartition::even(4, 2);
    let (vals, stats) =
        eval_polynomial_skellam(&f, &data, &partition, 4096.0, 0.0, &VflConfig::fast(2));
    assert!(
        (vals[0] - truth).abs() < 0.01,
        "got {} want {truth}",
        vals[0]
    );
    assert!(stats.total.rounds >= 4);
}
