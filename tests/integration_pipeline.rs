//! End-to-end pipeline tests spanning datasets -> mechanisms -> accounting
//! -> tasks.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqm::accounting::calibration::CalibrationTarget;
use sqm::datasets::{acsincome_like, ClassificationSpec, Scale, SpectralSpec};
use sqm::tasks::logreg::{accuracy, DpSgd, LocalDpLogReg, LrConfig, NonPrivateLogReg, SqmLogReg};
use sqm::tasks::pca::{pca_utility, AnalyzeGaussPca, LocalDpPca, NonPrivatePca, SqmPca};

/// Figure 2's qualitative ordering on a full pipeline:
/// non-private >= central ~ SQM(large gamma) > local-DP.
#[test]
fn pca_utility_ordering_matches_figure2() {
    let data = SpectralSpec::new(1500, 16)
        .with_decay(1.0)
        .with_seed(42)
        .generate();
    let k = 4;
    let (eps, delta) = (1.0, 1e-5);
    let mut rng = StdRng::seed_from_u64(0);

    let reps = 8;
    let mut u = [0.0f64; 4]; // [ceiling, central, sqm, local]
    for _ in 0..reps {
        u[0] += pca_utility(&data, &NonPrivatePca::new(k).fit(&data));
        u[1] += pca_utility(
            &data,
            &AnalyzeGaussPca::new(k, eps, delta).fit(&mut rng, &data),
        );
        u[2] += pca_utility(
            &data,
            &SqmPca::new(k, 2f64.powi(12), eps, delta).fit(&mut rng, &data),
        );
        u[3] += pca_utility(&data, &LocalDpPca::new(k, eps, delta).fit(&mut rng, &data));
    }
    for v in u.iter_mut() {
        *v /= reps as f64;
    }
    assert!(u[0] >= u[1] - 1e-9, "ceiling {} vs central {}", u[0], u[1]);
    assert!(u[2] > u[3], "SQM {} must beat local-DP {}", u[2], u[3]);
    assert!(
        u[2] > 0.85 * u[1],
        "SQM {} should track central {}",
        u[2],
        u[1]
    );
}

/// Figure 2's epsilon trend: more budget, more utility (SQM).
#[test]
fn pca_utility_monotone_in_epsilon() {
    let data = SpectralSpec::new(1000, 12)
        .with_decay(1.0)
        .with_seed(7)
        .generate();
    let mut rng = StdRng::seed_from_u64(1);
    let mut last = 0.0;
    for eps in [0.25, 1.0, 8.0] {
        let mut acc = 0.0;
        for _ in 0..6 {
            acc += pca_utility(
                &data,
                &SqmPca::new(3, 2048.0, eps, 1e-5).fit(&mut rng, &data),
            );
        }
        let u = acc / 6.0;
        assert!(
            u >= last * 0.98,
            "eps={eps}: utility {u} dropped from {last}"
        );
        last = u;
    }
}

/// Figure 3's qualitative ordering on a full LR pipeline.
#[test]
fn logreg_accuracy_ordering_matches_figure3() {
    let (train, test) = ClassificationSpec::new(3000, 12)
        .with_seed(5)
        .generate()
        .split(0.8, 0);
    let cfg = LrConfig::new(150, 0.05).with_lr(2.0).with_seed(1);
    let (eps, delta) = (4.0, 1e-5);
    let mut rng = StdRng::seed_from_u64(2);

    let reps = 3;
    let mut a = [0.0f64; 4]; // [ceiling, dpsgd, sqm, local]
    for r in 0..reps {
        let c = cfg.clone().with_seed(r as u64);
        a[0] += accuracy(
            &NonPrivateLogReg::new(c.clone()).fit(&mut rng, &train),
            &test,
        );
        a[1] += accuracy(
            &DpSgd::new(c.clone(), eps, delta).fit(&mut rng, &train),
            &test,
        );
        a[2] += accuracy(
            &SqmLogReg::new(c.clone(), 2f64.powi(13), eps, delta).fit(&mut rng, &train),
            &test,
        );
        a[3] += accuracy(&LocalDpLogReg::new(eps, delta).fit(&mut rng, &train), &test);
    }
    for v in a.iter_mut() {
        *v /= reps as f64;
    }
    assert!(a[2] > a[3] + 0.02, "SQM {} must beat local {}", a[2], a[3]);
    assert!(
        a[2] > a[1] - 0.08,
        "SQM {} should track DPSGD {}",
        a[2],
        a[1]
    );
    assert!(a[0] >= a[1] - 0.05, "ceiling {} vs DPSGD {}", a[0], a[1]);
}

/// SQM-PCA's calibration must satisfy its *declared* target exactly
/// (privacy is a hard constraint, never approximate).
#[test]
fn pca_pipeline_respects_privacy_budget() {
    let data = acsincome_like(0, Scale::Laptop, 3);
    for eps in [0.25, 1.0, 8.0] {
        let mech = SqmPca::new(5, 1024.0, eps, 1e-5);
        let achieved = mech.achieved_epsilon(data.max_row_norm(), data.cols());
        assert!(
            achieved <= eps * (1.0 + 1e-6),
            "eps target {eps}: achieved {achieved}"
        );
    }
}

/// LR calibration accounts subsampling and composition: more rounds at the
/// same target require strictly more noise.
#[test]
fn logreg_noise_grows_with_rounds() {
    let gamma = 1024.0;
    let d = 50;
    let mk =
        |rounds| SqmLogReg::new(LrConfig::new(rounds, 0.01), gamma, 1.0, 1e-5).calibrated_mu(d);
    let mu10 = mk(10);
    let mu1000 = mk(1000);
    assert!(mu1000 > mu10, "mu {mu1000} vs {mu10}");
    // RDP composition is sub-linear: 100x rounds needs far less than 100x mu
    // (would be 100x in variance under naive composition at fixed alpha).
    assert!(mu1000 < mu10 * 150.0);
}

/// The CalibrationTarget type rejects nonsensical budgets at the boundary
/// of the pipeline.
#[test]
#[should_panic(expected = "epsilon")]
fn rejects_zero_epsilon() {
    CalibrationTarget::new(0.0, 1e-5);
}

/// Multi-release budgeting: run a PCA covariance release and several LR
/// rounds against one odometer; the recorded spend must bind before the
/// budget is exceeded (Lemma 10 composition through the odometer).
#[test]
fn odometer_governs_multi_release_session() {
    use sqm::accounting::budget::{Admission, PrivacyOdometer};
    use sqm::accounting::skellam::skellam_rdp;
    use sqm::accounting::{default_alpha_grid, RdpCurve};
    use sqm::core::sensitivity::pca_sensitivity;

    let gamma = 1024.0;
    let n = 12;
    let sens = pca_sensitivity(gamma, 1.0, n);
    // A covariance release calibrated for eps ~ 1 alone.
    let mu = sqm::accounting::calibration::calibrate_skellam_mu(
        sqm::accounting::calibration::CalibrationTarget::new(1.0, 1e-5),
        sens,
        1,
        1.0,
    );
    let release = RdpCurve::from_fn(&default_alpha_grid(), |a| skellam_rdp(a, sens, mu));

    let mut odometer = PrivacyOdometer::new(3.0, 1e-5);
    let mut admitted = 0;
    while odometer.admit(&release) == Admission::Admitted {
        admitted += 1;
        assert!(admitted < 100, "odometer failed to bind");
    }
    // eps ~1 each under a 3.0 budget: RDP composition admits at least 3
    // (composition is sublinear) but must stop well before 20.
    assert!((3..20).contains(&admitted), "admitted {admitted}");
    assert!(odometer.spent_epsilon() <= 3.0 + 1e-9);
    assert!(odometer.remaining_epsilon() < 1.0);
}
