//! Statistical validation of the privacy machinery: noise laws, quantization
//! bias, and the design ablations called out in DESIGN.md.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sqm::accounting::calibration::{
    calibrate_gaussian_sigma, calibrate_skellam_mu, skellam_epsilon, CalibrationTarget,
};
use sqm::accounting::skellam::Sensitivity;
use sqm::core::mechanism::{sqm_polynomial, SqmParams};
use sqm::core::{Monomial, Polynomial};
use sqm::linalg::Matrix;
use sqm::sampling::rounding::{nearest_round, stochastic_round};
use sqm::sampling::skellam::sample_skellam;

fn moments(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    (mean, var)
}

/// The mechanism's output noise variance matches the calibrated Skellam
/// law after down-scaling — i.e. the implementation injects exactly the
/// noise the accountant assumed.
#[test]
fn mechanism_noise_matches_accounting() {
    let p = Polynomial::one_dimensional(2, vec![Monomial::new(1.0, vec![(0, 1), (1, 1)])]);
    let data = Matrix::zeros(1, 2);
    let gamma = 32.0;
    let sens = Sensitivity::new(10.0, 10.0);
    let mu = calibrate_skellam_mu(CalibrationTarget::new(1.0, 1e-5), sens, 1, 1.0);
    let mut rng = StdRng::seed_from_u64(1);
    let xs: Vec<f64> = (0..3000)
        .map(|_| sqm_polynomial(&mut rng, &p, &data, SqmParams::new(gamma, mu, 4))[0])
        .collect();
    let (mean, var) = moments(&xs);
    let expect_var = 2.0 * mu / gamma.powf(6.0); // lambda = 2 => amp gamma^3
    assert!(
        mean.abs() < 5.0 * (expect_var / 3000.0).sqrt(),
        "mean {mean}"
    );
    assert!(
        (var - expect_var).abs() / expect_var < 0.15,
        "var {var} expect {expect_var}"
    );
}

/// Distributed noise: no single client's share explains the aggregate —
/// removing one share still leaves Sk((n-1)/n * mu)-scale randomness
/// (the client-observed privacy argument under Lemma 3).
#[test]
fn residual_noise_after_removing_one_share() {
    let mut rng = StdRng::seed_from_u64(2);
    let n = 10;
    let mu = 400.0;
    let local = mu / n as f64;
    let residuals: Vec<f64> = (0..30_000)
        .map(|_| {
            let shares: Vec<i64> = (0..n).map(|_| sample_skellam(&mut rng, local)).collect();
            // A curious client knows her own share (index 0).
            (shares.iter().sum::<i64>() - shares[0]) as f64
        })
        .collect();
    let (_, var) = moments(&residuals);
    let expect = 2.0 * mu * (n as f64 - 1.0) / n as f64;
    assert!(
        (var - expect).abs() / expect < 0.05,
        "var {var} expect {expect}"
    );
}

/// Ablation (DESIGN.md #2): stochastic rounding is unbiased for monomial
/// sums; deterministic nearest rounding is measurably biased.
#[test]
fn stochastic_vs_nearest_rounding_bias() {
    let mut rng = StdRng::seed_from_u64(3);
    let gamma = 4.0; // coarse on purpose: bias shows at small gamma
    let x = 0.6001; // gamma * x = 2.4004 -> nearest = 2 (bias -0.4)
    let reps = 60_000;
    let stoch_mean: f64 = (0..reps)
        .map(|_| stochastic_round(&mut rng, gamma * x) as f64)
        .sum::<f64>()
        / reps as f64;
    let det = nearest_round(gamma * x) as f64;
    assert!(
        (stoch_mean - gamma * x).abs() < 0.01,
        "stochastic mean {stoch_mean}"
    );
    assert!(
        (det - gamma * x).abs() > 0.3,
        "nearest rounding should be biased here"
    );
}

/// Ablation (DESIGN.md #3): quantizing coefficients with the
/// degree-compensating scale keeps every monomial at the same
/// amplification. Without compensation a mixed-degree polynomial's
/// components are scaled inconsistently, so a single down-scale produces a
/// wrong answer.
#[test]
fn coefficient_quantization_is_necessary_for_mixed_degrees() {
    // f(x) = x0^2 + x0 over x0 = 0.5: true per-record value 0.75.
    let mut rng = StdRng::seed_from_u64(4);
    let gamma: f64 = 256.0;
    let x = 0.5f64;
    let qx = stochastic_round(&mut rng, gamma * x); // ~ gamma/2, exact here
                                                    // Naive: no coefficient compensation; both terms summed then divided by
                                                    // the dominant gamma^2: the linear term is off by a factor of gamma.
    let naive = (qx as f64 * qx as f64 + qx as f64) / gamma.powi(2);
    assert!(
        (naive - 0.75).abs() > 0.2,
        "naive should be badly wrong: {naive}"
    );
    // Algorithm 3: deg-2 coeff scaled by gamma, deg-1 coeff by gamma^2,
    // divide by gamma^3.
    let compensated = (gamma * (qx as f64 * qx as f64) + gamma.powi(2) * qx as f64) / gamma.powi(3);
    assert!(
        (compensated - 0.75).abs() < 0.01,
        "compensated {compensated}"
    );
}

/// The Skellam-vs-Gaussian comparison (Figure 4 right): at fixed (eps,
/// delta) and fine quantization, the normalized Skellam noise std is within
/// a few percent of the calibrated Gaussian sigma.
#[test]
fn skellam_noise_overhead_vanishes() {
    let target = CalibrationTarget::new(1.0, 1e-5);
    let sigma = calibrate_gaussian_sigma(target, 1.0, 1, 1.0);
    // Skellam with sensitivity ~ gamma^lambda * 1 for a degree-1 release.
    let mut overheads = Vec::new();
    for gamma in [16.0f64, 256.0, 4096.0] {
        let d2 = gamma + 1.0; // quantized sensitivity with +1 rounding slack
        let sens = Sensitivity::new(d2, d2);
        let mu = calibrate_skellam_mu(target, sens, 1, 1.0);
        let normalized = (2.0 * mu).sqrt() / gamma;
        overheads.push(normalized / sigma - 1.0);
    }
    assert!(overheads[0] > overheads[2], "{overheads:?}");
    assert!(overheads[2] < 0.05, "residual overhead {}", overheads[2]);
}

/// Client-observed privacy is strictly weaker than server-observed, and
/// approaches it as the client count grows (Section V-C's P/(P-1) factor).
#[test]
fn client_observed_epsilon_degrades_gracefully() {
    use sqm::accounting::skellam::skellam_rdp_client_observed;
    use sqm::accounting::{default_alpha_grid, rdp_to_dp};
    let sens = Sensitivity::new(5.0, 5.0);
    let mu = 10_000.0;
    let delta = 1e-5;
    let (server_eps, _) = skellam_epsilon(sens, mu, 1, 1.0, delta);
    let grid = default_alpha_grid();
    let client_eps = |n: usize| {
        grid.iter()
            .map(|&a| rdp_to_dp(a as f64, skellam_rdp_client_observed(a, sens, mu, n), delta))
            .fold(f64::INFINITY, f64::min)
    };
    let c3 = client_eps(3);
    let c100 = client_eps(100);
    assert!(c3 > c100, "more clients => tighter client-observed privacy");
    assert!(
        c100 > server_eps,
        "client-observed is never stronger than server-observed"
    );
    // Sensitivity doubling alone implies roughly 2x epsilon in the Gaussian
    // regime; allow [1.5, 4].
    let ratio = c100 / server_eps;
    assert!((1.5..4.0).contains(&ratio), "ratio {ratio}");
}

/// End-to-end unbiasedness of the full mechanism (quantization of data and
/// coefficients + noise): the estimator's mean equals the true value.
#[test]
fn mechanism_is_unbiased_end_to_end() {
    let p = Polynomial::one_dimensional(
        2,
        vec![
            Monomial::new(0.7, vec![(0, 2)]),
            Monomial::new(-0.3, vec![(1, 1)]),
        ],
    );
    let data = Matrix::from_rows(&[vec![0.55, -0.25], vec![-0.35, 0.45]]);
    let truth = p.sum_over((0..2).map(|i| data.row(i)))[0];
    let mut rng = StdRng::seed_from_u64(6);
    let reps = 4000;
    let mean: f64 = (0..reps)
        .map(|_| sqm_polynomial(&mut rng, &p, &data, SqmParams::new(64.0, 5.0, 3))[0])
        .sum::<f64>()
        / reps as f64;
    // gamma = 64 is deliberately coarse; unbiasedness must hold regardless.
    assert!((mean - truth).abs() < 0.01, "mean {mean} truth {truth}");
}
